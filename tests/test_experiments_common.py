"""Tests for the experiment infrastructure itself: FigureResult, the
workload builders, environment sizing, and the validation experiment."""

import pytest

from repro.envs.environments import EnvKind
from repro.experiments.common import (
    FigureResult,
    build_env,
    colocated_mix,
    total_footprint,
)
from repro.experiments.validation import run_validation
from repro.util.units import KiB, MiB
from repro.workflows.task import WorkloadClass

CHUNK = KiB(256)


class TestFigureResult:
    def test_add_series_length_checked(self):
        r = FigureResult("f", "d", xlabels=["a", "b"])
        with pytest.raises(Exception):
            r.add_series("s", [1.0])

    def test_value_lookup(self):
        r = FigureResult("f", "d", xlabels=["a", "b"])
        r.add_series("s", [1.0, 2.0])
        assert r.value("s", "b") == 2.0
        with pytest.raises(ValueError):
            r.value("s", "zz")
        with pytest.raises(KeyError):
            r.value("nope", "a")

    def test_table_contains_notes(self):
        r = FigureResult("f", "desc", xlabels=["x"])
        r.add_series("s", [1.0])
        r.notes.append("hello note")
        out = r.to_table()
        assert "desc" in out and "hello note" in out

    def test_csv_round_trips_through_standard_reader(self):
        import csv
        import io

        r = FigureResult("f", "d", xlabels=["a", "b", "c"])
        r.add_series("s1", [1.0, 0.1 + 0.2, 1e-17])
        r.add_series("s2", [-3.5, 12345.678, 0.0])
        rows = list(csv.reader(io.StringIO(r.to_csv())))
        assert rows[0] == ["f", "a", "b", "c"]
        parsed = {row[0]: [float(v) for v in row[1:]] for row in rows[1:]}
        assert parsed == r.series  # exact, not approximate


class TestColocatedMix:
    def test_int_count_applies_to_all_classes(self):
        specs = colocated_mix(2, scale=1 / 512)
        counts = {}
        for s in specs:
            counts[s.wclass] = counts.get(s.wclass, 0) + 1
        assert all(v == 2 for v in counts.values())
        assert len(counts) == 4

    def test_mapping_counts(self):
        specs = colocated_mix({WorkloadClass.DM: 3}, scale=1 / 512)
        assert len(specs) == 3
        assert all(s.wclass is WorkloadClass.DM for s in specs)

    def test_submission_order_shuffled_deterministically(self):
        a = colocated_mix(2, scale=1 / 512, seed=5)
        b = colocated_mix(2, scale=1 / 512, seed=5)
        c = colocated_mix(2, scale=1 / 512, seed=6)
        assert [s.name for s in a] == [s.name for s in b]
        assert [s.name for s in a] != [s.name for s in c]

    def test_names_unique(self):
        specs = colocated_mix(3, scale=1 / 512)
        assert len({s.name for s in specs}) == len(specs)


class TestBuildEnv:
    def test_ie_gets_headroom(self):
        specs = colocated_mix({WorkloadClass.DM: 2}, scale=1 / 512)
        env = build_env(EnvKind.IE, specs, chunk_size=CHUNK, ideal_headroom=2.0)
        assert env.topology.node(0).capacity(0) >= total_footprint(specs) * 2
        env.stop()

    def test_constrained_fraction(self):
        specs = colocated_mix({WorkloadClass.DM: 2}, scale=1 / 512)
        env = build_env(EnvKind.CBE, specs, dram_fraction=0.5, chunk_size=CHUNK)
        assert env.topology.node(0).capacity(0) == pytest.approx(
            total_footprint(specs) * 0.5, rel=0.01
        )
        env.stop()

    def test_dram_per_node_override(self):
        specs = colocated_mix({WorkloadClass.DM: 2}, scale=1 / 512)
        env = build_env(
            EnvKind.CBE, specs, n_nodes=2, chunk_size=CHUNK, dram_per_node=MiB(32)
        )
        for node in env.topology.nodes:
            assert node.capacity(0) == MiB(32)
        env.stop()

    def test_minimum_dram_floor(self):
        specs = colocated_mix({WorkloadClass.DM: 1}, scale=1 / 4096)
        env = build_env(EnvKind.CBE, specs, dram_fraction=0.001, chunk_size=CHUNK)
        assert env.topology.node(0).capacity(0) >= 16 * CHUNK
        env.stop()


class TestValidationExperiment:
    def test_model_is_exact(self):
        r = run_validation(chunk_size=CHUNK)
        for tier, values in r.series.items():
            for v in values:
                assert v == pytest.approx(1.0, abs=0.02)

    def test_covers_all_tiers_and_mixes(self):
        r = run_validation(chunk_size=CHUNK)
        assert set(r.series) == {"DRAM", "PMEM", "CXL"}
        assert r.xlabels == ["compute", "latency", "bandwidth", "blend"]
