"""Flag-predictor tests: exact match, nearest match, cold-start heuristics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.flags import MemFlag
from repro.core.predictor import (
    ExecutionLogStore,
    ExecutionRecord,
    FlagPredictor,
    flag_sizes_from_heatmap,
)
from repro.memory.pageset import PageSet
from repro.util.units import KiB, MiB

CHUNK = KiB(64)


class TestExecutionLogStore:
    def test_record_and_get(self):
        store = ExecutionLogStore()
        rec = ExecutionRecord("dl", MiB(10), {MemFlag.BW: MiB(4)})
        store.record(rec)
        assert store.get("dl") is rec
        assert len(store) == 1

    def test_latest_record_wins(self):
        store = ExecutionLogStore()
        store.record(ExecutionRecord("dl", MiB(10), {MemFlag.BW: MiB(4)}))
        newer = ExecutionRecord("dl", MiB(20), {MemFlag.BW: MiB(8)})
        store.record(newer)
        assert store.get("dl") is newer

    def test_nearest_prefers_same_family(self):
        store = ExecutionLogStore()
        store.record(ExecutionRecord("dl-0", MiB(10), {MemFlag.BW: MiB(4)}))
        store.record(ExecutionRecord("sc-0", MiB(11), {MemFlag.CAP: MiB(11)}))
        got = store.nearest("dl-7", MiB(11))
        assert got.key == "dl-0"  # family beats closer footprint

    def test_nearest_falls_back_to_closest_footprint(self):
        store = ExecutionLogStore()
        store.record(ExecutionRecord("a", MiB(10), {MemFlag.CAP: MiB(10)}))
        store.record(ExecutionRecord("b", MiB(100), {MemFlag.CAP: MiB(100)}))
        assert store.nearest("zz", MiB(90)).key == "b"

    def test_nearest_on_empty(self):
        assert ExecutionLogStore().nearest("x", MiB(1)) is None


class TestPredictFlags:
    def test_cold_start_default(self):
        p = FlagPredictor()
        assert p.predict_flags("new", MiB(4)) == MemFlag.LAT | MemFlag.CAP

    def test_uses_recorded_flags(self):
        p = FlagPredictor()
        p.store.record(ExecutionRecord("dl", MiB(10), {MemFlag.BW: MiB(10)}))
        assert p.predict_flags("dl", MiB(8)) is MemFlag.BW

    def test_nearest_match_used_as_hint(self):
        p = FlagPredictor()
        p.store.record(ExecutionRecord("dl-0", MiB(10), {MemFlag.BW: MiB(10)}))
        assert p.predict_flags("dl-3", MiB(10)) is MemFlag.BW


class TestPredictFlagSizes:
    def test_sizes_sum_exactly(self):
        p = FlagPredictor()
        sizes = p.predict_flag_sizes("x", MiB(7), MemFlag.LAT | MemFlag.CAP)
        assert sum(sizes.values()) == MiB(7)

    def test_lat_cap_heuristic_fraction(self):
        p = FlagPredictor(default_lat_fraction=0.25)
        sizes = p.predict_flag_sizes("x", MiB(8), MemFlag.LAT | MemFlag.CAP)
        assert sizes[MemFlag.LAT] == MiB(2)
        assert sizes[MemFlag.CAP] == MiB(6)

    def test_scaled_from_history(self):
        p = FlagPredictor()
        p.store.record(
            ExecutionRecord("dl", MiB(10), {MemFlag.BW: MiB(6), MemFlag.CAP: MiB(4)})
        )
        sizes = p.predict_flag_sizes("dl", MiB(20), MemFlag.BW | MemFlag.CAP)
        assert sizes[MemFlag.BW] == pytest.approx(MiB(12), abs=CHUNK)
        assert sum(sizes.values()) == MiB(20)

    def test_equal_split_without_history(self):
        p = FlagPredictor()
        sizes = p.predict_flag_sizes("x", MiB(9), MemFlag.BW | MemFlag.SHL)
        assert sum(sizes.values()) == MiB(9)
        assert abs(sizes[MemFlag.BW] - sizes[MemFlag.SHL]) <= 1

    @given(
        st.integers(min_value=1, max_value=2**30),
        st.sampled_from(
            [
                MemFlag.LAT | MemFlag.CAP,
                MemFlag.BW | MemFlag.CAP,
                MemFlag.LAT | MemFlag.BW | MemFlag.CAP,
                MemFlag.SHL,
            ]
        ),
    )
    def test_sizes_always_sum_to_request(self, nbytes, flags):
        p = FlagPredictor()
        sizes = p.predict_flag_sizes("k", nbytes, flags)
        assert sum(sizes.values()) == nbytes
        assert all(s > 0 for s in sizes.values())


class TestHeatmapDerivation:
    def _ps(self):
        ps = PageSet("t", 10 * CHUNK, CHUNK)
        ps.tier[:] = 0  # mapped (metadata only, no accounting needed here)
        ps.temperature[:] = [100, 80, 1, 1, 1, 1, 1, 1, 1, 1]
        return ps

    def test_hot_set_becomes_lat(self):
        sizes = flag_sizes_from_heatmap(self._ps(), hot_share=0.8)
        assert sizes[MemFlag.LAT] == 2 * CHUNK
        assert sizes[MemFlag.CAP] == 8 * CHUNK

    def test_bw_weight_splits_hot_set(self):
        sizes = flag_sizes_from_heatmap(self._ps(), hot_share=0.8, bw_weight=0.5)
        assert sizes[MemFlag.BW] == CHUNK
        assert sizes[MemFlag.LAT] == CHUNK

    def test_learn_roundtrip(self):
        p = FlagPredictor()
        p.learn("dl", self._ps(), duration=12.0)
        rec = p.store.get("dl")
        assert rec is not None
        assert rec.duration == 12.0
        assert MemFlag.LAT in p.predict_flags("dl", MiB(1))
