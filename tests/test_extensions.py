"""Tests for the extension features: loaded latency (§VI future work),
shared read-only inputs (§III-C5 strategy 1), and the checkpointing
workload."""

import numpy as np
import pytest

from repro.core.sharing import SharedMemoryManager
from repro.envs.environments import EnvKind, EnvironmentConfig, Environment, make_environment
from repro.memory.system import NodeMemorySystem
from repro.memory.tiers import DRAM
from repro.memory.topology import SharedCXLPool
from repro.metrics.collector import MetricsRegistry
from repro.policies.linux import LinuxSwapPolicy
from repro.runtime.node_agent import NodeAgent
from repro.runtime.rates import RateModelConfig, loaded_latency_factor, phase_slowdown
from repro.util.units import GBps, KiB, MiB
from repro.workflows.library import checkpointing_task, with_shared_input
from repro.workflows.task import SharedInput

from conftest import CHUNK, simple_task, small_specs
from test_rates import phase, ps_with_weights, SPECS


class TestLoadedLatencyFactor:
    def test_idle_is_unity(self):
        assert loaded_latency_factor(0.0, 4.0) == 1.0

    def test_saturated_hits_max(self):
        assert loaded_latency_factor(1.0, 4.0) == 4.0

    def test_quadratic_midpoint(self):
        assert loaded_latency_factor(0.5, 5.0) == pytest.approx(2.0)

    def test_clamped_above_one(self):
        assert loaded_latency_factor(3.0, 4.0) == 4.0

    def test_invalid_max_factor(self):
        with pytest.raises(ValueError):
            RateModelConfig(loaded_latency_max_factor=0.5)


class TestLoadedLatencySlowdown:
    def test_disabled_by_default(self):
        ps = ps_with_weights([DRAM], [1.0])
        util = np.array([1.0, 0, 0, 0])
        p = phase(compute=0.3, lat=0.7, bw=0.0, demand=0)
        s = phase_slowdown(p, ps, SPECS, GBps(1), tier_bw_utilization=util)
        assert s == pytest.approx(1.0)

    def test_saturated_tier_inflates_latency(self):
        ps = ps_with_weights([DRAM], [1.0])
        cfg = RateModelConfig(loaded_latency=True, loaded_latency_max_factor=3.0)
        util = np.array([1.0, 0, 0, 0])
        p = phase(compute=0.3, lat=0.7, bw=0.0, demand=0)
        s = phase_slowdown(p, ps, SPECS, GBps(1), config=cfg, tier_bw_utilization=util)
        assert s == pytest.approx(0.3 + 0.7 * 3.0)

    def test_idle_tier_unaffected(self):
        ps = ps_with_weights([DRAM], [1.0])
        cfg = RateModelConfig(loaded_latency=True)
        util = np.zeros(4)
        p = phase(compute=0.3, lat=0.7, bw=0.0, demand=0)
        s = phase_slowdown(p, ps, SPECS, GBps(1), config=cfg, tier_bw_utilization=util)
        assert s == pytest.approx(1.0)

    def test_end_to_end_loaded_latency_slows_contended_node(self, engine, metrics):
        def build(loaded):
            eng_metrics = MetricsRegistry()
            node = NodeMemorySystem(small_specs(dram=MiB(8)), f"n-{loaded}")
            agent = NodeAgent(
                engine,
                node,
                LinuxSwapPolicy(scan_noise=0.0),
                eng_metrics,
                cores=8,
                chunk_size=CHUNK,
                rate_config=RateModelConfig(loaded_latency=loaded),
            )
            for i in range(2):
                agent.start_task(
                    simple_task(
                        f"t{i}-{loaded}", footprint=MiB(1), base_time=5.0,
                        lat_frac=0.5, bw_frac=0.4, demand_bandwidth=GBps(60.0),
                    )
                )
            return eng_metrics

        plain = build(False)
        loaded = build(True)
        engine.run(until=500.0)
        t_plain = plain.mean_execution_time()
        t_loaded = loaded.mean_execution_time()
        assert t_loaded > t_plain


class TestSharedInputs:
    def make_imme_agent(self, engine, metrics):
        specs = small_specs(dram=MiB(16), cxl=MiB(256))
        node = NodeMemorySystem(specs, "n0")
        shm = SharedMemoryManager(SharedCXLPool(MiB(256)), n_nodes=1)
        from repro.core.manager import TieredMemoryManager

        agent = NodeAgent(
            engine, node, TieredMemoryManager(specs), metrics,
            cores=8, chunk_size=CHUNK, shared_memory=shm, node_index=0,
        )
        return agent, shm

    def test_shared_input_staged_once(self, engine, metrics):
        agent, shm = self.make_imme_agent(engine, metrics)
        base = simple_task("a", footprint=MiB(1), base_time=2.0)
        s1 = with_shared_input(base, "census", MiB(4))
        s2 = with_shared_input(base.with_name("b"), "census", MiB(4))
        agent.start_task(s1)
        agent.start_task(s2)
        assert shm.staged_bytes == MiB(4)  # one copy, two references
        assert shm.pool.refcount("census") == 2
        engine.run(until=100.0)
        assert not shm.pool.contains("census")  # freed at last detach

    def test_private_copy_without_shared_manager(self, engine, metrics):
        specs = small_specs(dram=MiB(16))
        node = NodeMemorySystem(specs, "n0")
        agent = NodeAgent(
            engine, node, LinuxSwapPolicy(scan_noise=0.0), metrics,
            cores=8, chunk_size=CHUNK,
        )
        spec = with_shared_input(
            simple_task("a", footprint=MiB(1), base_time=2.0), "census", MiB(4)
        )
        te = agent.start_task(spec)
        # footprint inflated by the private copy
        assert te.pageset.mapped_bytes == MiB(5)
        engine.run(until=100.0)

    def test_shared_inputs_grow_max_footprint(self):
        spec = with_shared_input(simple_task("a", footprint=MiB(2)), "x", MiB(4))
        assert spec.max_footprint == MiB(6)

    def test_imme_environment_end_to_end(self):
        base = simple_task("m", footprint=MiB(1), base_time=1.0)
        specs = [
            with_shared_input(base.with_name(f"m{i}"), "common-input", MiB(8))
            for i in range(4)
        ]
        env = make_environment(EnvKind.IMME, dram_capacity=MiB(32), chunk_size=KiB(64))
        metrics = env.run_batch(specs)
        assert len(metrics.completed()) == 4
        # exactly two fresh stagings: the container image + the input
        # (four instances re-referenced the same staged input region)
        assert env.shared_memory.stage_count == 2
        env.stop()


class TestCheckpointingWorkload:
    def test_phase_structure(self):
        spec = checkpointing_task(scale=0.01, checkpoints=3)
        names = [p.name for p in spec.phases]
        assert names == [
            "compute-0", "checkpoint-0",
            "compute-1", "checkpoint-1",
            "compute-2", "checkpoint-2",
        ]
        assert spec.phases[1].allocate is not None
        assert spec.phases[2].release_region == 1

    def test_runs_end_to_end_with_dynamic_alloc_free(self):
        spec = checkpointing_task(scale=1 / 256, checkpoints=2)
        env = make_environment(
            EnvKind.IMME, dram_capacity=spec.footprint, chunk_size=KiB(64)
        )
        metrics = env.run_batch([spec])
        tm = metrics.get(spec.name)
        assert tm.done
        assert len(tm.phase_durations) == 4
        env.stop()

    def test_checkpoint_buffers_do_not_accumulate(self):
        """Each checkpoint frees its predecessor: peak mapped bytes stay
        bounded by footprint + one buffer."""
        spec = checkpointing_task(scale=1 / 256, checkpoints=3)
        env = make_environment(
            EnvKind.IMME, dram_capacity=spec.footprint * 2, chunk_size=KiB(64)
        )
        env.scheduler.submit(spec)
        peak = 0
        while not env.scheduler.all_done:
            env.engine.step()
            ps = env.topology.node(0).get_pageset(spec.name)
            if ps is not None:
                peak = max(peak, ps.mapped_bytes)
        limit = spec.footprint + int(spec.footprint * 0.25) + 2 * KiB(64)
        assert peak <= limit
        env.stop()
