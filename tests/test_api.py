"""Table I API tests: allocate_TM / free_TM lifecycle."""

import numpy as np
import pytest

from repro.core.api import TieredMemoryClient
from repro.core.flags import MemFlag
from repro.memory.pageset import NO_REGION, PageSet
from repro.memory.tiers import CXL, DRAM
from repro.policies.linux import LinuxSwapPolicy
from repro.util.errors import AllocationError
from repro.util.units import MiB

from conftest import CHUNK


def client_for(node, ctx, footprint=MiB(2)):
    ps = PageSet("task", footprint, CHUNK)
    node.register(ps)
    return TieredMemoryClient(ctx, LinuxSwapPolicy(scan_noise=0.0), ps), ps


class TestAllocateTM:
    def test_allocation_backs_chunks(self, node, ctx):
        client, ps = client_for(node, ctx)
        h = client.allocate_TM(MiB(1))
        assert h.nbytes == MiB(1)
        assert ps.bytes_in(DRAM) == MiB(1)
        assert client.allocated_bytes == MiB(1)

    def test_regions_are_disjoint(self, node, ctx):
        client, ps = client_for(node, ctx)
        h1 = client.allocate_TM(MiB(1))
        h2 = client.allocate_TM(MiB(1))
        assert h1.region != h2.region
        r1 = np.flatnonzero(ps.region == h1.region)
        r2 = np.flatnonzero(ps.region == h2.region)
        assert not set(r1) & set(r2)

    def test_flags_recorded_on_region(self, node, ctx):
        client, ps = client_for(node, ctx)
        h = client.allocate_TM(MiB(1), MemFlag.LAT)
        assert ps.region_flags[h.region] is MemFlag.LAT
        assert h.flags is MemFlag.LAT

    def test_address_space_exhaustion(self, node, ctx):
        client, ps = client_for(node, ctx, footprint=MiB(1))
        client.allocate_TM(MiB(1))
        with pytest.raises(AllocationError, match="address space"):
            client.allocate_TM(CHUNK)

    def test_failed_placement_rolls_back_region(self, node, ctx):
        # a policy that always fails
        class Exploding(LinuxSwapPolicy):
            def place(self, ctx, ps, request):
                raise AllocationError("no")

        ps = PageSet("t2", MiB(1), CHUNK)
        node.register(ps)
        client = TieredMemoryClient(ctx, Exploding(scan_noise=0.0), ps)
        with pytest.raises(AllocationError):
            client.allocate_TM(MiB(1))
        assert (ps.region == NO_REGION).all()
        assert client.live_regions == ()

    def test_zero_size_rejected(self, node, ctx):
        client, _ = client_for(node, ctx)
        with pytest.raises(Exception):
            client.allocate_TM(0)


class TestFreeTM:
    def test_free_returns_memory(self, node, ctx):
        client, ps = client_for(node, ctx)
        h = client.allocate_TM(MiB(1))
        client.free_TM(h)
        assert node.used(DRAM) == 0
        assert (ps.region == NO_REGION).all()
        node.validate()

    def test_double_free_rejected(self, node, ctx):
        client, _ = client_for(node, ctx)
        h = client.allocate_TM(MiB(1))
        client.free_TM(h)
        with pytest.raises(AllocationError, match="double free"):
            client.free_TM(h)

    def test_foreign_handle_rejected(self, node, ctx):
        client, _ = client_for(node, ctx)
        other_ps = PageSet("other", MiB(1), CHUNK)
        node.register(other_ps)
        other = TieredMemoryClient(ctx, LinuxSwapPolicy(scan_noise=0.0), other_ps)
        h = other.allocate_TM(MiB(1))
        with pytest.raises(Exception):
            client.free_TM(h)

    def test_free_region_by_id(self, node, ctx):
        client, _ = client_for(node, ctx)
        h = client.allocate_TM(MiB(1))
        client.free_region(h.region)
        assert client.live_regions == ()

    def test_free_unknown_region_rejected(self, node, ctx):
        client, _ = client_for(node, ctx)
        with pytest.raises(Exception):
            client.free_region(99)

    def test_freed_space_is_reusable(self, node, ctx):
        client, ps = client_for(node, ctx, footprint=MiB(1))
        h = client.allocate_TM(MiB(1))
        client.free_TM(h)
        h2 = client.allocate_TM(MiB(1))  # same chunks, new region
        assert h2.region != h.region
        assert ps.mapped_bytes == MiB(1)
