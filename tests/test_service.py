"""Steady-state service mode: arrival streams, windowed metrics, warm-up
detection, admission control, and end-to-end open-loop runs.

Covers the windowed-metrics edge cases explicitly: an empty window, a
single partial window at the horizon, warm-up longer than the run, and
determinism of window boundaries under a fixed seed with jobs=1 vs
jobs=N."""

import itertools
import math

import numpy as np
import pytest

from repro.cache.codec import decode, encode
from repro.envs.environments import EnvKind, make_environment
from repro.experiments.ext_steady_state import run_steady_state
from repro.metrics.collector import MetricsRegistry
from repro.scenarios import from_toml, run_service, to_toml
from repro.scenarios.registry import scenario
from repro.scenarios.build import service_sizing_tasks
from repro.scenarios.paper import ext_steady_state_family
from repro.service import (
    AcceptAll,
    ClusterView,
    MemoryHeadroomGate,
    QueueDepthCap,
    ServiceReport,
    ServiceSpec,
    TaskStream,
    WindowAccumulator,
    arrival_process,
    build_admission,
    burst_modulator,
    detect_warmup,
    diurnal_modulator,
    load_trace,
    modulated_rate,
    mser5,
    poisson_process,
    serve,
    sliding_cv,
    trace_process,
    uniform_process,
)
from repro.sim.engine import SimulationEngine
from repro.sim.process import ReportPeriod
from repro.util.rng import RngFactory
from repro.util.units import GiB, KiB, MiB

TINY = 1.0 / 2048.0
CHUNK = KiB(256)


def tiny_env(kind=EnvKind.IMME, n_nodes=1, dram=MiB(32)):
    return make_environment(kind, n_nodes=n_nodes, dram_capacity=dram, chunk_size=CHUNK)


# --------------------------------------------------------------------------- #
# spec validation
# --------------------------------------------------------------------------- #

class TestServiceSpec:
    def test_defaults_need_stop_condition(self):
        with pytest.raises(Exception, match="stop condition"):
            ServiceSpec(max_arrivals=0, horizon=0.0)

    def test_valid_with_max_arrivals_or_horizon(self):
        assert ServiceSpec(max_arrivals=5).max_arrivals == 5
        assert ServiceSpec(horizon=100.0).horizon == 100.0

    @pytest.mark.parametrize(
        "kw",
        [
            {"arrival": "zipf"},
            {"warmup": "magic"},
            {"warmup_metric": "vibes"},
            {"admission": "bribe"},
            {"window": 0.0},
            {"rate": 0.0},
            {"cv_span": 1},
            {"classes": ()},
            {"classes": (("DM", 0),)},
        ],
    )
    def test_rejects_bad_fields(self, kw):
        with pytest.raises(Exception):
            ServiceSpec(max_arrivals=1, **kw)

    def test_classes_and_params_normalize_sorted(self):
        spec = ServiceSpec(
            max_arrivals=1,
            classes={"SC": 1, "DM": 3},
            params={"start": 5.0, "burst_period": 50.0},
        )
        assert spec.classes == (("DM", 3), ("SC", 1))
        assert [k for k, _ in spec.params] == ["burst_period", "start"]
        assert spec.param("start") == 5.0
        assert spec.param("missing", 7) == 7


# --------------------------------------------------------------------------- #
# arrival processes
# --------------------------------------------------------------------------- #

class TestArrivals:
    def test_poisson_deterministic_and_increasing(self):
        a = list(itertools.islice(poisson_process(0.5, rng_factory=RngFactory(3)), 50))
        b = list(itertools.islice(poisson_process(0.5, rng_factory=RngFactory(3)), 50))
        assert a == b
        assert all(y > x for x, y in zip(a, a[1:]))
        # mean gap roughly 1/rate over 50 draws
        assert 0.8 < np.mean(np.diff([0.0] + a)) * 0.5 < 1.25

    def test_poisson_seed_sensitivity(self):
        a = list(itertools.islice(poisson_process(0.5, rng_factory=RngFactory(3)), 10))
        b = list(itertools.islice(poisson_process(0.5, rng_factory=RngFactory(4)), 10))
        assert a != b

    def test_uniform_exact_spacing(self):
        times = list(itertools.islice(uniform_process(0.25, start=10.0), 4))
        assert times == [14.0, 18.0, 22.0, 26.0]

    def test_diurnal_modulator_bounds(self):
        m = diurnal_modulator(100.0, 0.5)
        probe = [m(t) for t in np.linspace(0.0, 200.0, 401)]
        assert min(probe) >= 0.5 - 1e-9 and max(probe) <= 1.5 + 1e-9

    def test_burst_modulator_square_wave(self):
        m = burst_modulator(100.0, 10.0, 4.0)
        assert m(5.0) == 4.0 and m(50.0) == 1.0 and m(105.0) == 4.0

    def test_modulated_rate_peak_bounds_rate(self):
        rate_fn, peak = modulated_rate(
            2.0, [diurnal_modulator(100.0, 0.5), burst_modulator(50.0, 5.0, 3.0)]
        )
        probe = [rate_fn(t) for t in np.linspace(0.0, 500.0, 2001)]
        assert max(probe) <= peak + 1e-9
        assert peak == pytest.approx(2.0 * 1.5 * 3.0, rel=1e-3)

    def test_thinned_poisson_concentrates_in_bursts(self):
        spec = ServiceSpec(
            rate=1.0,
            max_arrivals=400,
            params={"burst_period": 100.0, "burst_duration": 10.0, "burst_factor": 10.0},
        )
        times = [t for t, _ in itertools.islice(arrival_process(spec, 0), 400)]
        in_burst = sum(1 for t in times if (t % 100.0) < 10.0)
        # 10x rate over 10% of the cycle -> roughly half the arrivals
        assert in_burst / len(times) > 0.35

    def test_trace_csv_roundtrip(self, tmp_path):
        p = tmp_path / "trace.csv"
        p.write_text("time,class\n# comment\n5.0,DM\n1.0,\n9.5,SC\n")
        rows = load_trace(p)
        assert rows == [(1.0, None), (5.0, "DM"), (9.5, "SC")]

    def test_trace_json_roundtrip(self, tmp_path):
        p = tmp_path / "trace.json"
        p.write_text('[3.0, {"t": 1.5, "class": "DC"}, {"t": 8.0}]')
        rows = load_trace(p)
        assert rows == [(1.5, "DC"), (3.0, None), (8.0, None)]

    def test_trace_bad_suffix_and_missing(self, tmp_path):
        with pytest.raises(Exception):
            load_trace(tmp_path / "nope.csv")
        bad = tmp_path / "trace.txt"
        bad.write_text("1.0\n")
        with pytest.raises(ValueError, match="unknown trace format"):
            load_trace(bad)

    def test_trace_process_repeat_shifts(self):
        rows = [(1.0, None), (4.0, "DM")]
        out = list(itertools.islice(trace_process(rows, repeat=10.0), 6))
        assert out == [
            (1.0, None), (4.0, "DM"),
            (11.0, None), (14.0, "DM"),
            (21.0, None), (24.0, "DM"),
        ]

    def test_trace_process_finite_without_repeat(self):
        assert list(trace_process([(2.0, None)])) == [(2.0, None)]

    def test_arrival_process_trace_needs_param(self):
        spec = ServiceSpec(arrival="trace", max_arrivals=1)
        with pytest.raises(Exception, match="trace"):
            arrival_process(spec, 0)

    def test_arrival_process_start_offset(self):
        spec = ServiceSpec(arrival="uniform", rate=1.0, max_arrivals=3,
                           params={"start": 100.0})
        times = [t for t, _ in itertools.islice(arrival_process(spec, 0), 3)]
        assert times == [101.0, 102.0, 103.0]


# --------------------------------------------------------------------------- #
# task streams
# --------------------------------------------------------------------------- #

class TestTaskStream:
    def test_per_index_determinism_and_order_independence(self):
        classes = (("DM", 3), ("DC", 1))
        a = TaskStream(classes, TINY, 7)
        b = TaskStream(classes, TINY, 7)
        ta = [a.task(i) for i in (0, 1, 2, 3)]
        tb = [b.task(i) for i in (3, 0, 2, 1)]  # build order must not matter
        by_index = {int(t.name.split("-")[1]): t for t in tb}
        for i, t in enumerate(ta):
            assert t == by_index[i]

    def test_seed_changes_stream(self):
        classes = (("DM", 1),)
        a = TaskStream(classes, TINY, 7).task(0)
        b = TaskStream(classes, TINY, 8).task(0)
        assert a != b

    def test_class_mix_respects_weights(self):
        stream = TaskStream((("DM", 3), ("DC", 1)), TINY, 0)
        drawn = [stream.wclass(i) for i in range(200)]
        assert 0.6 < drawn.count("DM") / len(drawn) < 0.9

    def test_override_and_outside_mix_class(self):
        stream = TaskStream((("DM", 1),), TINY, 0)
        assert stream.wclass(0, "SC") == "SC"
        t = stream.task(0, "SC")
        assert t.wclass.name == "SC"
        with pytest.raises(Exception, match="unknown stream class"):
            stream.wclass(0, "NOPE")

    def test_bases_order_matches_declaration(self):
        stream = TaskStream((("SC", 1), ("DM", 2)), TINY, 0)
        assert [b.wclass.name for b in stream.bases()] == ["SC", "DM"]


# --------------------------------------------------------------------------- #
# warm-up detection
# --------------------------------------------------------------------------- #

class TestWarmup:
    def test_mser5_cuts_transient(self):
        series = [10.0, 9.0, 8.0, 6.0, 4.0] + [1.0, 1.01, 0.99, 1.0, 1.0] * 4
        cut, converged = mser5(series)
        assert converged
        assert cut == 5  # exactly the transient batch

    def test_mser5_too_short_is_unconverged(self):
        assert mser5([1.0] * 9) == (0, False)

    def test_mser5_ignores_nan(self):
        series = [float("nan")] + [5.0] * 5 + [1.0] * 20
        cut, converged = mser5(series)
        assert converged and cut == 5

    def test_sliding_cv_finds_settle_point(self):
        series = [50.0, 20.0, 10.0, 5.0] + [2.0, 2.05, 1.95, 2.0, 2.02] * 3
        cut, converged = sliding_cv(series, threshold=0.10, span=5)
        assert converged and 3 <= cut <= 5

    def test_sliding_cv_never_settles(self):
        series = [1.0, 100.0] * 6
        assert sliding_cv(series, threshold=0.05, span=4) == (len(series), False)

    def test_detect_warmup_none_and_empty(self):
        assert detect_warmup("none", [5.0, 1.0]) == (0, True)
        assert detect_warmup("mser-5", []) == (0, True)

    def test_detect_warmup_dispatch(self):
        series = [9.0] * 5 + [1.0] * 15
        assert detect_warmup("mser-5", series)[1] is True
        assert detect_warmup("sliding-cv", series, cv_threshold=0.1, cv_span=5)[1] is True


# --------------------------------------------------------------------------- #
# the report period (engine-side windowing)
# --------------------------------------------------------------------------- #

class TestReportPeriod:
    def test_windows_arrive_in_order_with_bounds(self):
        engine = SimulationEngine()
        period = ReportPeriod(engine, 10.0)
        seen = []
        period.add_reporter(lambda i, s, e: seen.append((i, s, e)))
        engine.run(until=35.0)
        assert seen == [(0, 0.0, 10.0), (1, 10.0, 20.0), (2, 20.0, 30.0)]

    def test_close_partial_covers_trailing_window(self):
        engine = SimulationEngine()
        period = ReportPeriod(engine, 10.0)
        seen = []
        fn = lambda i, s, e: seen.append((i, s, e))
        period.add_reporter(fn)
        engine.run(until=25.0)
        period.close_partial(fn)
        assert seen[-1] == (2, 20.0, 25.0)

    def test_close_partial_noop_on_exact_boundary(self):
        engine = SimulationEngine()
        period = ReportPeriod(engine, 10.0)
        seen = []
        fn = lambda i, s, e: seen.append(i)
        period.add_reporter(fn)
        engine.run(until=20.0)
        n = len(seen)
        period.close_partial(fn)
        assert len(seen) == n

    def test_removed_reporter_stops_firing(self):
        engine = SimulationEngine()
        period = ReportPeriod(engine, 10.0)
        seen = []
        handle = period.add_reporter(lambda i, s, e: seen.append(i))
        engine.run(until=15.0)
        period.remove(handle)
        engine.run(until=45.0)
        assert seen == [0]


# --------------------------------------------------------------------------- #
# windowed metrics edge cases
# --------------------------------------------------------------------------- #

def _assemble(acc, *, stop, metrics=None, warmup="none", offered=0, admitted=0,
              cv_threshold=0.10, cv_span=5):
    return acc.assemble(
        scenario="edge", seed=0,
        metrics=metrics if metrics is not None else MetricsRegistry(),
        start=0.0, stop=stop,
        offered=offered, admitted=admitted, rejected=offered - admitted,
        warmup_method=warmup, warmup_metric="utilization",
        cv_threshold=cv_threshold, cv_span=cv_span,
    )


class TestWindowAccumulatorEdges:
    def test_empty_window_reports_nan_turnaround_zero_util(self):
        acc = WindowAccumulator(10.0, total_cores=4)
        acc.on_boundary(0, 0)
        acc.on_boundary(0, 0)
        rep = _assemble(acc, stop=20.0)
        assert len(rep.windows) == 2
        w = rep.windows[0]
        assert w.arrivals == 0 and w.completed == 0
        assert w.utilization == 0.0
        assert math.isnan(w.mean_turnaround)
        assert rep.steady_utilization == 0.0

    def test_single_partial_window_at_horizon(self):
        acc = WindowAccumulator(50.0, total_cores=4)
        acc.on_offered(True)
        # run stopped at t=20 inside the first window; no boundary ever fired
        rep = _assemble(acc, stop=20.0, offered=1, admitted=1)
        assert len(rep.windows) == 1
        w = rep.windows[0]
        assert (w.start, w.end) == (0.0, 20.0)
        assert w.duration == 20.0 < acc.window
        assert w.arrivals == 1 and w.admitted == 1

    def test_warmup_longer_than_run_is_unconverged(self):
        acc = WindowAccumulator(10.0, total_cores=4)
        for _ in range(4):
            acc.on_boundary(3, 1)
        # oscillating utilization -> sliding-cv never settles
        metrics = MetricsRegistry()
        for i in range(4):
            tm = metrics.task(f"t{i}", "DM")
            tm.submitted_at = i * 10.0
            tm.scheduled_at = i * 10.0
            tm.started_at = i * 10.0
            tm.finished_at = i * 10.0 + (9.9 if i % 2 else 0.4)
        rep = _assemble(acc, stop=40.0, metrics=metrics, warmup="sliding-cv",
                        offered=4, admitted=4, cv_threshold=0.01, cv_span=4)
        assert not rep.converged
        assert rep.warmup_windows == len(rep.windows)
        assert rep.steady_windows == ()
        assert rep.steady_utilization == 0.0 and rep.steady_queue_depth == 0.0

    def test_busy_core_seconds_overlap_is_exact(self):
        acc = WindowAccumulator(10.0, total_cores=2)
        acc.cores_of["a"] = 2
        metrics = MetricsRegistry()
        tm = metrics.task("a", "DM")
        tm.submitted_at = 0.0
        tm.scheduled_at = 2.0
        tm.started_at = 5.0
        tm.finished_at = 15.0
        acc.on_boundary(0, 1)
        acc.on_boundary(0, 0)
        rep = _assemble(acc, stop=20.0, metrics=metrics, offered=1, admitted=1)
        # 5 busy seconds x 2 cores over a 10s window of 2 cores each window
        assert rep.windows[0].utilization == pytest.approx(0.5)
        assert rep.windows[1].utilization == pytest.approx(0.5)
        assert rep.windows[1].completed == 1
        assert rep.windows[1].mean_turnaround == pytest.approx(15.0)

    def test_running_task_counts_up_to_stop(self):
        acc = WindowAccumulator(10.0, total_cores=1)
        metrics = MetricsRegistry()
        tm = metrics.task("r", "DM")
        tm.started_at = 0.0  # never finishes
        acc.on_boundary(0, 1)
        rep = _assemble(acc, stop=10.0, metrics=metrics)
        assert rep.windows[0].utilization == pytest.approx(1.0)
        assert rep.completed == 0

    def test_latency_lookup_raises_for_missing_class(self):
        acc = WindowAccumulator(10.0, total_cores=1)
        acc.on_boundary(0, 0)
        rep = _assemble(acc, stop=10.0)
        with pytest.raises(KeyError):
            rep.latency("DM")


# --------------------------------------------------------------------------- #
# admission policies
# --------------------------------------------------------------------------- #

class _StubView:
    def __init__(self, depth=0, best_free=0):
        self.queue_depth = depth
        self._best = best_free

    def best_free_memory(self):
        return self._best


class TestAdmission:
    def test_accept_all(self):
        assert AcceptAll().admit(None, _StubView()) is True

    def test_queue_depth_cap(self):
        cap = QueueDepthCap(4)
        assert cap.admit(None, _StubView(depth=3))
        assert not cap.admit(None, _StubView(depth=4))
        with pytest.raises(Exception):
            QueueDepthCap(0)

    def test_memory_headroom_gate(self):
        stream = TaskStream((("DM", 1),), TINY, 0)
        task = stream.task(0)
        gate = MemoryHeadroomGate(headroom=2.0)
        assert gate.admit(task, _StubView(best_free=int(task.max_footprint * 2)))
        assert not gate.admit(task, _StubView(best_free=int(task.max_footprint)))

    def test_build_admission_dispatch(self):
        assert isinstance(build_admission(ServiceSpec(max_arrivals=1)), AcceptAll)
        cap = build_admission(
            ServiceSpec(max_arrivals=1, admission="queue-cap", queue_cap=9)
        )
        assert isinstance(cap, QueueDepthCap) and cap.max_depth == 9
        gate = build_admission(
            ServiceSpec(max_arrivals=1, admission="memory-headroom", headroom=1.5)
        )
        assert isinstance(gate, MemoryHeadroomGate) and gate.headroom == 1.5
        with pytest.raises(Exception, match="queue_cap"):
            build_admission(ServiceSpec(max_arrivals=1, admission="queue-cap"))

    def test_cluster_view_reads_live_cluster(self):
        env = tiny_env()
        try:
            view = ClusterView(env.scheduler, env.scheduler.agents)
            assert view.queue_depth == 0
            assert view.best_free_memory() > 0
            assert view.free_memory(0) == view.best_free_memory()
        finally:
            env.stop()


# --------------------------------------------------------------------------- #
# end-to-end service runs
# --------------------------------------------------------------------------- #

class TestServiceRun:
    def test_small_run_accounts_every_arrival(self):
        env = tiny_env()
        try:
            spec = ServiceSpec(rate=0.5, max_arrivals=6, window=10.0, warmup="none")
            rep = serve(env, spec, scale=TINY, seed=1)
        finally:
            env.stop()
        assert rep.offered == 6
        assert rep.admitted == 6 and rep.rejected == 0
        assert rep.completed == 6 and rep.failed == 0
        assert rep.duration > 0 and len(rep.windows) >= 1
        # window totals reconcile with run totals
        assert sum(w.arrivals for w in rep.windows) == rep.offered
        assert sum(w.completed for w in rep.windows) == rep.completed
        assert rep.windows[-1].end <= rep.duration + 1e-9
        dm = rep.latency("DM")
        assert dm.count == 6
        assert dm.p50 <= dm.p95 <= dm.p99
        assert "steady state" in rep.to_table()

    def test_repeat_run_is_bit_identical(self):
        def once():
            env = tiny_env()
            try:
                spec = ServiceSpec(rate=0.5, max_arrivals=6, window=10.0,
                                   warmup="none")
                return serve(env, spec, scale=TINY, seed=3)
            finally:
                env.stop()

        assert once() == once()

    def test_horizon_without_drain_truncates(self):
        env = tiny_env()
        try:
            spec = ServiceSpec(rate=0.2, horizon=45.0, window=20.0,
                               warmup="none", drain=False)
            rep = serve(env, spec, scale=TINY, seed=2)
        finally:
            env.stop()
        assert rep.duration == pytest.approx(45.0)
        # partial trailing window closed at the horizon
        assert rep.windows[-1].end == pytest.approx(45.0)
        assert rep.windows[-1].duration == pytest.approx(5.0)

    def test_queue_cap_sheds_and_counters_agree(self):
        env = tiny_env()
        try:
            spec = ServiceSpec(rate=20.0, max_arrivals=60, window=5.0,
                               warmup="none", admission="queue-cap", queue_cap=3)
            rep = serve(env, spec, scale=TINY, seed=4)
            assert env.scheduler.rejected == rep.rejected
            assert env.scheduler.admission is None  # detached after the run
        finally:
            env.stop()
        assert rep.rejected > 0
        assert rep.admitted + rep.rejected == rep.offered == 60
        assert rep.completed == rep.admitted
        assert sum(w.rejected for w in rep.windows) == rep.rejected

    def test_memory_headroom_differs_by_environment(self):
        spec = ServiceSpec(rate=30.0, max_arrivals=40, window=5.0, warmup="none",
                           admission="memory-headroom", headroom=1.0)
        admitted = {}
        for kind, dram in ((EnvKind.CBE, MiB(2)), (EnvKind.IMME, MiB(2))):
            env = make_environment(kind, n_nodes=1, dram_capacity=dram,
                                   chunk_size=CHUNK)
            try:
                admitted[kind] = serve(env, spec, scale=TINY, seed=6).admitted
            finally:
                env.stop()
        # tiered capacity admits at least as much as DRAM-only, and the
        # starved baseline must actually shed
        assert admitted[EnvKind.CBE] < 40
        assert admitted[EnvKind.IMME] >= admitted[EnvKind.CBE]

    def test_trace_driven_run_with_class_override(self, tmp_path):
        p = tmp_path / "trace.csv"
        p.write_text("1.0,DM\n2.0,SC\n3.0,DM\n")
        env = tiny_env()
        try:
            spec = ServiceSpec(arrival="trace", max_arrivals=3, window=10.0,
                               warmup="none", params={"trace": str(p)})
            rep = serve(env, spec, scale=TINY, seed=0)
        finally:
            env.stop()
        assert rep.offered == 3 and rep.completed == 3
        assert {cl.wclass for cl in rep.class_latency} == {"DM", "SC"}
        assert rep.latency("SC").count == 1

    def test_background_tasks_tracked_alongside_stream(self):
        env = tiny_env()
        stream = TaskStream((("SC", 1),), TINY, 99)
        bg = stream.task(0)
        try:
            spec = ServiceSpec(rate=0.5, max_arrivals=3, window=10.0, warmup="none")
            rep = serve(env, spec, scale=TINY, seed=5,
                        background=[bg], bg_arrivals=[2.0])
        finally:
            env.stop()
        assert rep.completed == 4  # 3 stream + 1 background
        assert rep.latency("SC").count >= 1

    def test_report_rides_cache_codec(self):
        env = tiny_env()
        try:
            spec = ServiceSpec(rate=0.5, max_arrivals=4, window=10.0, warmup="none")
            rep = serve(env, spec, scale=TINY, seed=7)
        finally:
            env.stop()
        assert decode(encode(rep)) == rep


# --------------------------------------------------------------------------- #
# acceptance: a 10k-arrival open-loop run reaching steady state
# --------------------------------------------------------------------------- #

class TestSteadyStateAcceptance:
    def test_ten_thousand_arrivals_reach_steady_state(self):
        env = make_environment(EnvKind.IMME, n_nodes=2, dram_capacity=GiB(2),
                               chunk_size=MiB(16))
        try:
            spec = ServiceSpec(
                rate=50.0, max_arrivals=10_000, window=20.0,
                admission="queue-cap", queue_cap=32,
                classes=(("DM", 3), ("DC", 1)),
            )
            rep = serve(env, spec, scale=TINY, seed=5)
        finally:
            env.stop()
        assert rep.offered == 10_000
        assert rep.admitted > 0 and rep.rejected > 0
        assert rep.completed == rep.admitted and rep.failed == 0
        assert rep.converged, "windowed utilization never reached steady state"
        assert rep.warmup_windows < len(rep.windows)
        assert rep.steady_utilization > 0.0
        assert rep.steady_queue_depth > 0.0
        assert rep.steady_throughput > 0.0
        for cl in rep.class_latency:
            assert cl.count > 0
            assert cl.p50 <= cl.p95 <= cl.p99
            assert math.isfinite(cl.mean)
        assert {cl.wclass for cl in rep.class_latency} == {"DM", "DC"}
        # window boundaries are an exact arithmetic grid from the origin
        for w in rep.windows[:-1]:
            assert w.duration == pytest.approx(20.0)
            assert w.start == pytest.approx(w.index * 20.0)


# --------------------------------------------------------------------------- #
# scenario + experiment integration
# --------------------------------------------------------------------------- #

class TestScenarioIntegration:
    def test_service_spec_survives_toml_roundtrip(self):
        family = ext_steady_state_family(scale=TINY, rates=(0.1,), max_arrivals=4,
                                         chunk_size=CHUNK)
        spec = family.scenarios[0]
        assert spec.service is not None
        again = from_toml(to_toml(spec))
        assert again == spec and again.service == spec.service

    def test_registered_family_loads_by_name(self):
        spec = scenario("ext-steady-state/IMME:0.10")
        assert spec.service is not None
        assert spec.service.rate == pytest.approx(0.10)

    def test_sizing_provisions_for_stream_classes(self):
        family = ext_steady_state_family(scale=TINY, rates=(0.1,), max_arrivals=4,
                                         sizing_copies=3, chunk_size=CHUNK)
        tasks = service_sizing_tasks(family.scenarios[0])
        names = {t.wclass.name for t in tasks}
        assert {"DM", "DC"} <= names
        assert sum(1 for t in tasks if t.wclass.name == "DM") == 3

    def test_run_service_over_registered_scenario(self):
        family = ext_steady_state_family(scale=TINY, rates=(0.2,), max_arrivals=3,
                                         window=50.0, sizing_copies=2,
                                         chunk_size=CHUNK)
        spec = next(s for s in family.scenarios
                    if s.name.startswith("ext-steady-state/IMME"))
        rep = run_service(spec)
        assert isinstance(rep, ServiceReport)
        assert rep.offered == 3
        assert rep.scenario == spec.name

    def test_jobs_parallelism_is_bit_identical(self):
        kw = dict(scale=TINY, rates=(0.05, 0.2), max_arrivals=3, window=50.0,
                  chunk_size=CHUNK, seed=0)
        serial = run_steady_state(jobs=1, **kw)
        parallel = run_steady_state(jobs=2, **kw)
        assert serial.series == parallel.series
        assert serial.xlabels == parallel.xlabels
