"""Remote-NUMA CXL-emulation tests."""

import pytest

from repro.memory.emulation import (
    PAPER_LOCAL,
    PAPER_REMOTE,
    NumaNodeDesc,
    emulated_cxl_specs,
    latency_probe,
)
from repro.memory.tiers import CXL, DRAM
from repro.util.units import GBps, GiB, ns


class TestLatencyProbe:
    def test_probe_near_nominal(self):
        measured = latency_probe(PAPER_LOCAL)
        assert measured == pytest.approx(PAPER_LOCAL.latency, rel=0.1)

    def test_probe_deterministic(self):
        assert latency_probe(PAPER_REMOTE) == latency_probe(PAPER_REMOTE)

    def test_seed_changes_measurement(self):
        a = latency_probe(PAPER_REMOTE, seed=0)
        b = latency_probe(PAPER_REMOTE, seed=1)
        assert a != b
        assert a == pytest.approx(b, rel=0.1)


class TestEmulatedSpecs:
    def test_paper_latency_ratio(self):
        specs = emulated_cxl_specs()
        ratio = specs[CXL].latency / specs[DRAM].latency
        assert ratio == pytest.approx(140 / 80)

    def test_calibrated_close_to_nominal(self):
        nominal = emulated_cxl_specs(calibrate=False)
        measured = emulated_cxl_specs(calibrate=True)
        assert measured[DRAM].latency == pytest.approx(nominal[DRAM].latency, rel=0.1)
        assert measured[CXL].latency == pytest.approx(nominal[CXL].latency, rel=0.1)

    def test_custom_sockets(self):
        local = NumaNodeDesc(ns(90), GBps(120), GBps(90), GiB(128))
        remote = NumaNodeDesc(ns(200), GBps(20), GBps(15), GiB(512))
        specs = emulated_cxl_specs(local, remote)
        assert specs[DRAM].capacity == GiB(128)
        assert specs[CXL].latency == pytest.approx(ns(200))
        assert specs[CXL].interconnect == "cxl-emulated-numa"

    def test_specs_run_an_environment(self):
        from repro.envs.environments import EnvKind, EnvironmentConfig, Environment
        from repro.util.units import KiB, MiB
        from conftest import simple_task

        # hand the emulated specs to a manager-driven node end to end
        from repro.core.manager import TieredMemoryManager
        from repro.memory.system import NodeMemorySystem
        from repro.metrics.collector import MetricsRegistry
        from repro.runtime.node_agent import NodeAgent
        from repro.sim.engine import SimulationEngine

        local = NumaNodeDesc(ns(80), GBps(100), GBps(80), MiB(8))
        remote = NumaNodeDesc(ns(140), GBps(30), GBps(25), MiB(64))
        specs = emulated_cxl_specs(local, remote, pmem_capacity=MiB(8))
        engine = SimulationEngine()
        metrics = MetricsRegistry()
        agent = NodeAgent(
            engine, NodeMemorySystem(specs, "emu"), TieredMemoryManager(specs),
            metrics, cores=4, chunk_size=KiB(64),
        )
        te = agent.start_task(simple_task("t", footprint=MiB(4), base_time=2.0))
        engine.run(until=100.0)
        assert metrics.get("t").done
