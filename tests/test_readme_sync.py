"""Documentation-sync tests: the README's code snippets must run, and the
documented entry points must exist."""

import re
from pathlib import Path

import pytest

README = (Path(__file__).parent.parent / "README.md").read_text()


class TestReadmeSnippets:
    def test_quickstart_snippet_executes(self):
        """Extract and run the first python code block (the quickstart)."""
        blocks = re.findall(r"```python\n(.*?)```", README, flags=re.S)
        assert blocks, "README lost its python quickstart block"
        snippet = blocks[0]
        # shrink the workload so the doc test stays fast
        snippet = snippet.replace("scale=1/64", "scale=1/512")
        namespace: dict = {}
        exec(compile(snippet, "<readme-quickstart>", "exec"), namespace)  # noqa: S102

    def test_documented_examples_exist(self):
        root = Path(__file__).parent.parent
        for match in re.findall(r"`examples/(\w+\.py)`", README):
            assert (root / "examples" / match).exists(), f"missing {match}"

    def test_documented_docs_exist(self):
        root = Path(__file__).parent.parent
        for name in ("architecture", "rate-model", "paper-mapping", "workloads", "api"):
            assert (root / "docs" / f"{name}.md").exists()

    def test_documented_commands_resolve(self):
        from repro.experiments.runner import ALL_EXPERIMENTS

        # README promises `python -m repro.experiments fig05 fig09`
        assert "fig05" in ALL_EXPERIMENTS and "fig09" in ALL_EXPERIMENTS

    def test_design_and_experiments_docs_exist(self):
        root = Path(__file__).parent.parent
        for name in ("DESIGN.md", "EXPERIMENTS.md", "CHANGELOG.md"):
            assert (root / name).exists()
