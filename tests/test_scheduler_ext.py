"""Scheduler-extension tests: priorities and memory-aware placement."""

import numpy as np
import pytest

from repro.containers.image import ContainerImage, ImageRegistry
from repro.containers.runtime import ContainerRuntime, NetworkFabric
from repro.memory.system import NodeMemorySystem
from repro.memory.tiers import DRAM
from repro.policies.linux import LinuxSwapPolicy
from repro.runtime.node_agent import NodeAgent
from repro.scheduler.slurm import SlurmScheduler
from repro.util.units import GBps, MiB

from conftest import CHUNK, make_pageset, simple_task, small_specs


def make_sched(engine, metrics, *, n_nodes=2, cores=2, placement="least-loaded",
               dram_sizes=None):
    dram_sizes = dram_sizes or [MiB(64)] * n_nodes
    agents = [
        NodeAgent(
            engine,
            NodeMemorySystem(small_specs(dram=dram_sizes[i], cxl=MiB(256)), f"n{i}"),
            LinuxSwapPolicy(scan_noise=0.0),
            metrics,
            cores=cores,
            chunk_size=CHUNK,
        )
        for i in range(n_nodes)
    ]
    reg = ImageRegistry()
    reg.add(ContainerImage("default.sif", MiB(10)))
    containers = ContainerRuntime(
        engine, reg, NetworkFabric(engine, GBps(1.0)), n_nodes, instantiation_time=0.01
    )
    return SlurmScheduler(
        engine, agents, containers, metrics, placement=placement
    ), agents


class TestPriorities:
    def test_high_priority_jumps_the_queue(self, engine, metrics):
        sched, _ = make_sched(engine, metrics, n_nodes=1, cores=2)
        # occupy the node, then queue a low- and a high-priority job
        sched.submit(simple_task("running", cores=2, base_time=2.0))
        sched.submit(simple_task("low", cores=2, base_time=1.0), priority=0)
        sched.submit(simple_task("high", cores=2, base_time=1.0), priority=10)
        sched.run_to_completion()
        assert metrics.get("high").started_at < metrics.get("low").started_at

    def test_fifo_within_priority(self, engine, metrics):
        sched, _ = make_sched(engine, metrics, n_nodes=1, cores=2)
        sched.submit(simple_task("running", cores=2, base_time=2.0))
        sched.submit(simple_task("first", cores=2, base_time=1.0), priority=5)
        sched.submit(simple_task("second", cores=2, base_time=1.0), priority=5)
        sched.run_to_completion()
        assert metrics.get("first").started_at < metrics.get("second").started_at


class TestMemoryAwarePlacement:
    def test_picks_node_with_most_free_memory(self, engine, metrics):
        sched, agents = make_sched(
            engine,
            metrics,
            n_nodes=2,
            cores=8,
            placement="memory-aware",
            dram_sizes=[MiB(8), MiB(64)],
        )
        # pre-fill node 1 partially so free memory still exceeds node 0
        filler = make_pageset(agents[1].memory, "filler", MiB(8))
        agents[1].memory.place(filler, np.arange(filler.n_chunks), DRAM)
        job = sched.submit(simple_task("t", footprint=MiB(1), base_time=1.0))
        sched.run_to_completion()
        assert job.node_index == 1  # 56 MiB free beats 8 MiB

    def test_least_loaded_ignores_memory(self, engine, metrics):
        sched, agents = make_sched(
            engine,
            metrics,
            n_nodes=2,
            cores=8,
            placement="least-loaded",
            dram_sizes=[MiB(8), MiB(64)],
        )
        # make node 1 busier in cores
        agents[1].cores_used = 4
        job = sched.submit(simple_task("t", footprint=MiB(1), base_time=1.0))
        sched.run_to_completion()
        assert job.node_index == 0

    def test_invalid_placement_rejected(self, engine, metrics):
        with pytest.raises(Exception):
            make_sched(engine, metrics, placement="random")
