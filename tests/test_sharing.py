"""Shared-memory manager tests (§III-C5)."""

import pytest

from repro.core.sharing import SharedMemoryManager
from repro.memory.topology import SharedCXLPool
from repro.util.units import MiB


@pytest.fixture
def shm():
    return SharedMemoryManager(SharedCXLPool(MiB(64)), n_nodes=2)


class TestStaging:
    def test_stage_creates_region(self, shm):
        h = shm.stage("img", MiB(4))
        assert h.nbytes == MiB(4)
        assert shm.staged_bytes == MiB(4)
        assert shm.stage_count == 1

    def test_restage_is_cache_hit(self, shm):
        shm.stage("img", MiB(4))
        shm.stage("img", MiB(4), owner="other")
        assert shm.stage_count == 1
        assert shm.staged_bytes == MiB(4)


class TestAttachDetach:
    def test_attach_requires_staged(self, shm):
        with pytest.raises(Exception):
            shm.attach("wf", "ghost")

    def test_attach_then_detach_keeps_platform_ref(self, shm):
        shm.stage("data", MiB(2))
        shm.attach("wf", "data")
        assert shm.detach("wf", "data") is False  # platform still holds it
        assert shm.pool.contains("data")

    def test_region_freed_when_last_ref_drops(self, shm):
        shm.stage("data", MiB(2), owner="wf1")
        shm.attach("wf2", "data")
        assert shm.detach("wf1", "data") is False
        assert shm.detach("wf2", "data") is True
        assert not shm.pool.contains("data")
        assert shm.staged_bytes == 0

    def test_double_attach_rejected(self, shm):
        shm.stage("d", MiB(1))
        shm.attach("wf", "d")
        with pytest.raises(Exception):
            shm.attach("wf", "d")

    def test_detach_all(self, shm):
        shm.stage("a", MiB(1), owner="wf")
        shm.stage("b", MiB(1), owner="wf")
        assert shm.detach_all("wf") == 2
        assert shm.attachments_of("wf") == ()

    def test_attachments_of(self, shm):
        shm.stage("a", MiB(1), owner="wf")
        handles = shm.attachments_of("wf")
        assert len(handles) == 1
        assert handles[0].name == "a"


class TestLocality:
    def test_first_access_populates_node_cache(self, shm):
        shm.stage("img", MiB(4))
        assert shm.note_access(0, "img") is False  # miss, now cached
        assert shm.is_cached_on(0, "img")
        assert shm.note_access(0, "img") is True  # hit
        assert shm.cache_hits == 1

    def test_caches_are_per_node(self, shm):
        shm.stage("img", MiB(4))
        shm.note_access(0, "img")
        assert not shm.is_cached_on(1, "img")

    def test_cache_invalidated_on_free(self, shm):
        shm.stage("img", MiB(4), owner="wf")
        shm.note_access(0, "img")
        shm.detach("wf", "img")
        assert not shm.is_cached_on(0, "img")

    def test_access_requires_staged(self, shm):
        with pytest.raises(Exception):
            shm.note_access(0, "nope")
