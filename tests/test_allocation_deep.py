"""Deep Algorithm-1 tests: three-atom recursion, evictable-map coupling,
and the manager's evictable accounting."""

import numpy as np
import pytest

from repro.core.allocation import EvictableMap, TierAllocator
from repro.core.flags import MemFlag
from repro.core.manager import TieredMemoryManager
from repro.core.predictor import ExecutionRecord, FlagPredictor
from repro.memory.system import NodeMemorySystem
from repro.memory.tiers import CXL, DRAM, PMEM
from repro.policies.base import AllocationRequest, PolicyContext
from repro.util.units import MiB

from conftest import CHUNK, make_pageset, small_specs


class TestThreeAtomRecursion:
    def test_lat_bw_cap_decomposition(self):
        predictor = FlagPredictor()
        predictor.store.record(
            ExecutionRecord(
                "w",
                MiB(12),
                {MemFlag.LAT: MiB(2), MemFlag.BW: MiB(4), MemFlag.CAP: MiB(6)},
            )
        )
        alloc = TierAllocator(small_specs(), predictor)
        ev = EvictableMap({DRAM: MiB(16), PMEM: MiB(16), CXL: MiB(64)})
        plan = alloc.tier_alloc("w", MiB(12), MemFlag.LAT | MemFlag.BW | MemFlag.CAP, ev)
        assert plan.total_bytes == MiB(12)
        # LAT got the fastest tier, CAP went to CXL, BW spans tiers
        assert plan.per_flag[MemFlag.LAT] == {DRAM: MiB(2)}
        assert plan.per_flag[MemFlag.CAP] == {CXL: MiB(6)}
        assert len(plan.per_flag[MemFlag.BW]) >= 2

    def test_recursion_consumes_ev_in_order(self):
        """The LAT slice drains DRAM before the BW slice sees it."""
        predictor = FlagPredictor()
        predictor.store.record(
            ExecutionRecord("w", MiB(8), {MemFlag.LAT: MiB(4), MemFlag.BW: MiB(4)})
        )
        alloc = TierAllocator(small_specs(), predictor)
        ev = EvictableMap({DRAM: MiB(4), PMEM: MiB(8), CXL: MiB(64)})
        plan = alloc.tier_alloc("w", MiB(8), MemFlag.LAT | MemFlag.BW, ev)
        assert plan.per_flag[MemFlag.LAT] == {DRAM: MiB(4)}
        # DRAM exhausted by LAT: the BW slice cannot include DRAM
        assert DRAM not in plan.per_flag[MemFlag.BW]
        assert ev[DRAM] == 0


class TestEvictableMapBehaviour:
    def test_consume_clamps_at_zero(self):
        ev = EvictableMap({DRAM: MiB(1)})
        ev.consume(DRAM, MiB(4))
        assert ev[DRAM] == 0

    def test_copy_is_independent(self):
        ev = EvictableMap({DRAM: MiB(4)})
        ev2 = ev.copy()
        ev2.consume(DRAM, MiB(4))
        assert ev[DRAM] == MiB(4)

    def test_missing_tier_reads_zero(self):
        assert EvictableMap({})[PMEM] == 0


class TestManagerEvictableMap:
    def _setup(self):
        specs = small_specs()
        node = NodeMemorySystem(specs, "n")
        ctx = PolicyContext(memory=node, rng=np.random.default_rng(0))
        mgr = TieredMemoryManager(specs, staging_fraction=0.0)
        return node, ctx, mgr

    def test_counts_free_plus_cold(self):
        node, ctx, mgr = self._setup()
        other = make_pageset(node, "other", MiB(2))
        node.place(other, np.arange(other.n_chunks), DRAM)
        other.temperature[:] = 0.0  # stone cold: fully evictable
        ev = mgr._evictable_map(ctx, protect_owner="me")
        assert ev[DRAM] == node.capacity(DRAM) - MiB(2) + MiB(2)

    def test_hot_pages_not_evictable(self):
        node, ctx, mgr = self._setup()
        other = make_pageset(node, "other", MiB(2))
        node.place(other, np.arange(other.n_chunks), DRAM)
        other.temperature[:] = 5.0
        ev = mgr._evictable_map(ctx, protect_owner="me")
        assert ev[DRAM] == node.capacity(DRAM) - MiB(2)

    def test_pinned_pages_not_evictable(self):
        node, ctx, mgr = self._setup()
        other = make_pageset(node, "other", MiB(2))
        node.place(other, np.arange(other.n_chunks), DRAM)
        other.temperature[:] = 0.0
        other.pinned[:] = True
        ev = mgr._evictable_map(ctx, protect_owner="me")
        assert ev[DRAM] == node.capacity(DRAM) - MiB(2)

    def test_protected_owner_pages_excluded(self):
        node, ctx, mgr = self._setup()
        mine = make_pageset(node, "me", MiB(2))
        node.place(mine, np.arange(mine.n_chunks), DRAM)
        mine.temperature[:] = 0.0
        ev = mgr._evictable_map(ctx, protect_owner="me")
        # my own cold pages must not be counted as evictable for my request
        assert ev[DRAM] == node.capacity(DRAM) - MiB(2)

    def test_staging_reserve_subtracted(self):
        specs = small_specs()
        node = NodeMemorySystem(specs, "n")
        ctx = PolicyContext(memory=node, rng=np.random.default_rng(0))
        mgr = TieredMemoryManager(specs, staging_fraction=0.25)
        ev = mgr._evictable_map(ctx, protect_owner="me")
        assert ev[DRAM] == node.capacity(DRAM) - int(node.capacity(DRAM) * 0.25)


class TestMovementReplacementInterplay:
    def test_exchange_never_displaces_protected_hot(self):
        """Exchange promotion must not evict a LAT task's unpinned hot
        pages for a CAP task's merely-warm ones."""
        specs = small_specs()
        node = NodeMemorySystem(specs, "n")
        ctx = PolicyContext(memory=node, rng=np.random.default_rng(0))
        mgr = TieredMemoryManager(specs)
        lat = make_pageset(node, "lat", MiB(4))
        lat.region_flags[0] = MemFlag.LAT
        mgr.place(ctx, lat, AllocationRequest("lat", 0, MiB(4), MemFlag.LAT))
        lat.temperature[:] = 2.0  # hot
        cap = make_pageset(node, "cap", MiB(1))
        cap.region_flags[0] = MemFlag.CAP
        mgr.place(ctx, cap, AllocationRequest("cap", 0, MiB(1), MemFlag.CAP))
        cap.temperature[:] = 0.5  # warm, above exchange threshold
        dram_before = lat.bytes_in(DRAM)
        pinned_bytes = int(lat.pinned.sum()) * lat.chunk_size
        mgr.tick(ctx)
        # watermark demotion may shed a sliver of the pageable region
        # (98% -> 90% of DRAM), but:
        # 1. the pinned slice is untouchable,
        assert lat.bytes_in(DRAM) >= pinned_bytes
        # 2. nothing of the protected task reaches disk (Alg. 2 demotes),
        from repro.memory.tiers import SWAP

        assert lat.bytes_in(SWAP) == 0
        # 3. the loss is bounded by the watermark delta, not wholesale
        #    displacement by the warm CAP task
        assert lat.bytes_in(DRAM) >= int(dram_before * 0.85)
        node.validate()
