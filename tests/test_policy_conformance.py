"""Policy conformance matrix.

Every memory policy — the baselines and the paper's manager — must honour
the same contract: allocations are fully backed, ticks preserve
accounting, fault-in clears touched swap when capacity allows, and release
returns memory.  One parametrized suite keeps future policies honest.
"""

import numpy as np
import pytest

from repro.core.flags import MemFlag
from repro.core.manager import TieredMemoryManager
from repro.memory.pageset import UNMAPPED, PageSet
from repro.memory.system import NodeMemorySystem
from repro.memory.tiers import DRAM, SWAP
from repro.policies.autonuma import AutoNumaPolicy
from repro.policies.base import AllocationRequest, PolicyContext
from repro.policies.interleave import DefaultAllocationPolicy, UniformInterleavePolicy
from repro.policies.linux import LinuxSwapPolicy
from repro.policies.tpp import TieredDemandPolicy
from repro.util.units import MiB

from conftest import CHUNK, small_specs

POLICY_FACTORIES = {
    "linux": lambda specs: LinuxSwapPolicy(scan_noise=0.0),
    "tpp": lambda specs: TieredDemandPolicy(scan_noise=0.0),
    "autonuma": lambda specs: AutoNumaPolicy(scan_noise=0.0),
    "uniform-interleave": lambda specs: UniformInterleavePolicy(),
    "default-alloc": lambda specs: DefaultAllocationPolicy(),
    "manager": lambda specs: TieredMemoryManager(specs),
}


@pytest.fixture(params=sorted(POLICY_FACTORIES), ids=lambda n: n)
def stack(request):
    specs = small_specs()
    node = NodeMemorySystem(specs, f"conf-{request.param}")
    ctx = PolicyContext(memory=node, rng=np.random.default_rng(3))
    policy = POLICY_FACTORIES[request.param](specs)
    return node, ctx, policy


def place(node, ctx, policy, owner, nbytes, flags=MemFlag.NONE):
    ps = PageSet(owner, nbytes, CHUNK)
    ps.region[:] = 0
    ps.region_flags[0] = flags
    node.register(ps)
    policy.place(ctx, ps, AllocationRequest(owner, 0, nbytes, flags))
    return ps


class TestPlacementContract:
    def test_small_allocation_fully_mapped(self, stack):
        node, ctx, policy = stack
        ps = place(node, ctx, policy, "a", MiB(2))
        assert not (ps.tier == UNMAPPED).any()
        node.validate()

    def test_oversized_allocation_fully_mapped_somewhere(self, stack):
        node, ctx, policy = stack
        ps = place(node, ctx, policy, "big", MiB(24))  # exceeds DRAM+PMEM
        assert not (ps.tier == UNMAPPED).any()
        node.validate()

    @pytest.mark.parametrize(
        "flags", [MemFlag.LAT, MemFlag.BW, MemFlag.CAP, MemFlag.LAT | MemFlag.CAP]
    )
    def test_every_flag_combination_accepted(self, stack, flags):
        node, ctx, policy = stack
        ps = place(node, ctx, policy, "f", MiB(1), flags)
        assert ps.mapped_bytes == MiB(1)
        node.validate()


class TestTickContract:
    def test_ticks_preserve_accounting(self, stack):
        node, ctx, policy = stack
        ps = place(node, ctx, policy, "a", MiB(6))
        rng = np.random.default_rng(0)
        for _ in range(5):
            ps.temperature = rng.random(ps.n_chunks).astype(np.float32)
            policy.tick(ctx)
            node.validate()
            assert not (ps.tier == UNMAPPED).any()

    def test_tick_on_empty_node(self, stack):
        node, ctx, policy = stack
        policy.tick(ctx)
        node.validate()


class TestFaultInContract:
    def test_touched_swap_cleared_when_room_exists(self, stack):
        node, ctx, policy = stack
        ps = place(node, ctx, policy, "a", MiB(2))
        idx = np.arange(8)
        node.migrate(ps, idx, SWAP)
        ps.pinned[idx] = False
        policy.fault_in(ctx, ps, idx)
        # byte-addressable capacity exists (64 MiB CXL): nothing stays in swap
        assert ps.tier[idx].max() != int(SWAP)
        node.validate()

    def test_fault_in_records_major_faults(self, stack):
        node, ctx, policy = stack
        majors = []
        ctx.record_major = lambda owner, n: majors.append(n)
        ps = place(node, ctx, policy, "a", MiB(2))
        node.migrate(ps, np.arange(4), SWAP)
        policy.fault_in(ctx, ps, np.arange(4))
        assert sum(majors) == 4


class TestReleaseContract:
    def test_release_returns_all_memory(self, stack):
        node, ctx, policy = stack
        ps = place(node, ctx, policy, "a", MiB(4))
        policy.release(ctx, ps, np.arange(ps.n_chunks))
        for tier in range(4):
            assert ps.counts_by_tier()[tier] == 0
        node.validate()
        assert node.rss(DRAM) == 0
