"""Tiny-scale smoke tests for the extension experiments (the benchmarks
run them at full laptop scale)."""

import pytest

from repro.experiments import (
    run_ablations,
    run_colocation,
    run_decomposition,
    run_failures,
    run_open_system,
    run_predictor_learning,
    run_shared_inputs,
    run_validation,
)
from repro.util.units import KiB

TINY = 1.0 / 512.0
CHUNK = KiB(256)


class TestSharedInputsSmoke:
    def test_one_staged_copy(self):
        r = run_shared_inputs(scale=TINY, instances=3, chunk_size=CHUNK)
        assert r.value("IMME", "staged copies") == 1.0
        assert r.value("TME", "staged copies") == 3.0


class TestFailuresSmoke:
    def test_imme_survives(self):
        r = run_failures(scale=TINY, instances=3, chunk_size=CHUNK)
        assert r.value("IMME", "oom-killed") == 0.0
        assert r.value("CBE", "oom-killed") == 3.0


class TestOpenSystemSmoke:
    def test_imme_flatter(self):
        r = run_open_system(
            scale=TINY, rates=(0.05, 0.2), stream_length=4, chunk_size=CHUNK
        )
        assert r.series["IMME"][-1] < r.series["CBE"][-1]


class TestColocationSmoke:
    def test_colocation_wins(self):
        r = run_colocation(
            scale=TINY, total_instances=8, n_nodes=2, chunk_size=CHUNK
        )
        assert (
            r.value("containerized", "makespan (s)")
            <= r.value("bare-metal", "makespan (s)")
        )


class TestPredictorSmoke:
    def test_learning_improves(self):
        r = run_predictor_learning(scale=TINY, runs=2, chunk_size=CHUNK)
        series = r.series["IMME(no flags)"]
        assert series[1] <= series[0]


class TestDecompositionSmoke:
    def test_unstrands_memory(self):
        r = run_decomposition(scale=TINY, dm_instances=2, chunk_size=CHUNK)
        assert (
            r.value("deconstructed", "peak big-job bytes (MiB)")
            < r.value("monolithic", "peak big-job bytes (MiB)")
        )


class TestValidationSmoke:
    def test_exact(self):
        r = run_validation(chunk_size=CHUNK)
        assert all(
            v == pytest.approx(1.0, abs=0.02)
            for vals in r.series.values()
            for v in vals
        )


class TestAblationsSmoke:
    def test_structure_and_signals(self):
        r = run_ablations(scale=TINY, chunk_size=CHUNK)
        assert set(r.series) == {
            "full-imme", "no-proactive", "no-pinning", "no-staging", "no-striping",
        }
        # staging is the unambiguous signal at any scale
        assert r.value("no-staging", "startup (s)") > r.value("full-imme", "startup (s)")
