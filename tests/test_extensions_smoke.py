"""Tiny-scale smoke tests for the extension experiments (the benchmarks
run them at full laptop scale)."""

import pytest

from repro.experiments import (
    run_ablations,
    run_colocation,
    run_decomposition,
    run_failures,
    run_open_system,
    run_predictor_learning,
    run_resilience,
    run_shared_inputs,
    run_validation,
)
from repro.util.units import KiB

TINY = 1.0 / 512.0
CHUNK = KiB(256)


class TestSharedInputsSmoke:
    def test_one_staged_copy(self):
        r = run_shared_inputs(scale=TINY, instances=3, chunk_size=CHUNK)
        assert r.value("IMME", "staged copies") == 1.0
        assert r.value("TME", "staged copies") == 3.0


class TestFailuresSmoke:
    def test_imme_survives(self):
        r = run_failures(scale=TINY, instances=3, chunk_size=CHUNK)
        assert r.value("IMME", "oom-killed") == 0.0
        assert r.value("CBE", "oom-killed") == 3.0
        # oom-killed is now sourced from the cgroup counter; here every
        # CBE/TME failure is an OOM kill, so the two columns agree
        assert r.value("CBE", "failed") == r.value("CBE", "oom-killed")

    def test_zero_margin_single_instance_reports_zero_makespan(self):
        # limit == footprint exactly: even the base allocation plus one
        # rounding chunk overruns, so nothing completes anywhere it OOMs
        r = run_failures(
            scale=TINY, instances=1, limit_margin=0.0, chunk_size=CHUNK
        )
        assert r.value("CBE", "completed") == 0.0
        makespan = r.value("CBE", "makespan (s)")
        assert makespan == 0.0  # used to be NaN
        assert makespan == makespan  # explicitly not NaN

    def test_imme_all_tiers_full(self):
        # IMME's CAP cascade never falls to swap: when DRAM, PMem, and
        # CXL together cannot hold the footprint, allocation must raise
        # OutOfMemoryError and the task is recorded as failed (not hung)
        from repro.envs.environments import EnvKind, make_environment
        from repro.util.units import MiB
        from repro.workflows.library import scientific_task

        spec = scientific_task(scale=TINY)
        env = make_environment(
            EnvKind.IMME,
            dram_capacity=MiB(8),
            pmem_capacity=MiB(8),
            cxl_capacity=MiB(8),
            chunk_size=CHUNK,
        )
        assert spec.max_footprint > 3 * MiB(8)
        metrics = env.run_batch([spec], max_time=1e6)
        env.stop()
        tm = metrics.get(spec.name)
        assert tm.failed
        assert "cannot back" in tm.failure_reason  # the OutOfMemoryError text


class TestResilienceSmoke:
    def test_imme_survives_chaos(self):
        r = run_resilience(scale=TINY, instances=3, chunk_size=CHUNK)
        imme = r.value("IMME", "completed")
        assert imme >= r.value("CBE", "completed")
        assert imme >= r.value("TME", "completed")
        assert imme == 3.0  # every workflow recovers despite the faults
        assert r.value("IMME", "faults") > 0.0
        assert r.value("IMME", "mttr (s)") > 0.0


class TestOpenSystemSmoke:
    def test_imme_flatter(self):
        r = run_open_system(
            scale=TINY, rates=(0.05, 0.2), stream_length=4, chunk_size=CHUNK
        )
        assert r.series["IMME"][-1] < r.series["CBE"][-1]


class TestColocationSmoke:
    def test_colocation_wins(self):
        r = run_colocation(
            scale=TINY, total_instances=8, n_nodes=2, chunk_size=CHUNK
        )
        assert (
            r.value("containerized", "makespan (s)")
            <= r.value("bare-metal", "makespan (s)")
        )


class TestPredictorSmoke:
    def test_learning_improves(self):
        r = run_predictor_learning(scale=TINY, runs=2, chunk_size=CHUNK)
        series = r.series["IMME(no flags)"]
        assert series[1] <= series[0]


class TestDecompositionSmoke:
    def test_unstrands_memory(self):
        r = run_decomposition(scale=TINY, dm_instances=2, chunk_size=CHUNK)
        assert (
            r.value("deconstructed", "peak big-job bytes (MiB)")
            < r.value("monolithic", "peak big-job bytes (MiB)")
        )


class TestValidationSmoke:
    def test_exact(self):
        r = run_validation(chunk_size=CHUNK)
        assert all(
            v == pytest.approx(1.0, abs=0.02)
            for vals in r.series.values()
            for v in vals
        )


class TestAblationsSmoke:
    def test_structure_and_signals(self):
        r = run_ablations(scale=TINY, chunk_size=CHUNK)
        assert set(r.series) == {
            "full-imme", "no-proactive", "no-pinning", "no-staging", "no-striping",
        }
        # staging is the unambiguous signal at any scale
        assert r.value("no-staging", "startup (s)") > r.value("full-imme", "startup (s)")
