"""Algorithm 2 tests: workflow-aware victim selection and demotion."""

import numpy as np
import pytest

from repro.core.flags import MemFlag
from repro.core.replacement import PageReplacementPolicy, is_protected
from repro.memory.tiers import CXL, DRAM, PMEM, SWAP
from repro.util.units import MiB

from conftest import CHUNK, make_pageset, small_specs
from repro.memory.system import NodeMemorySystem
from repro.policies.base import PolicyContext


def ctx_with(flags_map):
    node = NodeMemorySystem(small_specs(), "n")
    ctx = PolicyContext(memory=node, rng=np.random.default_rng(0))
    policy = PageReplacementPolicy(lambda owner: flags_map.get(owner, MemFlag.NONE))
    return node, ctx, policy


class TestIsProtected:
    @pytest.mark.parametrize(
        "flags,expected",
        [
            (MemFlag.LAT, True),
            (MemFlag.SHL, True),
            (MemFlag.LAT | MemFlag.CAP, True),
            (MemFlag.BW, False),
            (MemFlag.CAP, False),
            (MemFlag.NONE, False),
        ],
    )
    def test_protection(self, flags, expected):
        assert is_protected(flags) is expected


class TestVictimSelection:
    def test_unprotected_victimised_first(self):
        node, ctx, policy = ctx_with({"lat": MemFlag.LAT, "cap": MemFlag.CAP})
        lat = make_pageset(node, "lat", MiB(1))
        cap = make_pageset(node, "cap", MiB(1))
        node.place(lat, np.arange(lat.n_chunks), DRAM)
        node.place(cap, np.arange(cap.n_chunks), DRAM)
        lat.temperature[:] = 0.0  # colder than cap...
        cap.temperature[:] = 5.0  # ...but unprotected goes first
        victims = policy.select_victims(ctx, cap.n_chunks)
        owners = {ps.owner for ps, _ in victims}
        assert owners == {"cap"}

    def test_protected_pageable_used_when_needed(self):
        node, ctx, policy = ctx_with({"lat": MemFlag.LAT})
        lat = make_pageset(node, "lat", MiB(1))
        node.place(lat, np.arange(lat.n_chunks), DRAM)
        lat.pinned[: lat.n_chunks // 2] = True
        victims = policy.select_victims(ctx, lat.n_chunks)
        total = sum(idx.size for _, idx in victims)
        assert total == lat.n_chunks // 2  # only the pageable half

    def test_protect_owner_excluded(self):
        node, ctx, policy = ctx_with({})
        a = make_pageset(node, "a", MiB(1))
        node.place(a, np.arange(a.n_chunks), DRAM)
        assert policy.select_victims(ctx, 4, protect_owner="a") == []

    def test_zero_request(self):
        node, ctx, policy = ctx_with({})
        assert policy.select_victims(ctx, 0) == []


class TestReplace:
    def test_demotes_to_cxl_before_swap(self):
        node, ctx, policy = ctx_with({"cap": MemFlag.CAP})
        cap = make_pageset(node, "cap", MiB(2))
        node.place(cap, np.arange(cap.n_chunks), DRAM)
        freed = policy.replace(ctx, MiB(1))
        assert freed >= MiB(1)
        assert cap.bytes_in(CXL) >= MiB(1)
        assert cap.bytes_in(SWAP) == 0
        node.validate()

    def test_swaps_only_when_lower_tiers_full(self):
        node = NodeMemorySystem(small_specs(cxl=0, pmem=0), "n")
        ctx = PolicyContext(memory=node, rng=np.random.default_rng(0))
        policy = PageReplacementPolicy(lambda o: MemFlag.NONE)
        ps = make_pageset(node, "a", MiB(2))
        node.place(ps, np.arange(ps.n_chunks), DRAM)
        policy.replace(ctx, MiB(1))
        assert ps.bytes_in(SWAP) == MiB(1)
        node.validate()

    def test_shadow_demotions_keep_page_cache_copies(self):
        node, ctx, policy = ctx_with({})
        ps = make_pageset(node, "a", MiB(2))
        node.place(ps, np.arange(ps.n_chunks), DRAM)
        policy.replace(ctx, MiB(1), shadow_demotions=True)
        assert ps.in_page_cache.sum() > 0
        node.validate()

    def test_noop_on_zero_bytes(self):
        node, ctx, policy = ctx_with({})
        assert policy.replace(ctx, 0) == 0

    def test_coldest_victims_chosen_within_class(self):
        node, ctx, policy = ctx_with({})
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(ps.n_chunks), DRAM)
        ps.temperature[:] = np.arange(ps.n_chunks, dtype=np.float32)
        policy.replace(ctx, 4 * CHUNK)
        moved = np.flatnonzero(ps.tier != int(DRAM))
        assert set(moved) == {0, 1, 2, 3}

    def test_demote_order_validation(self):
        with pytest.raises(Exception):
            PageReplacementPolicy(lambda o: MemFlag.NONE, demote_order=(DRAM,))
