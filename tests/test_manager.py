"""TieredMemoryManager tests: tier classification, Alg-1 realization onto
chunks (pinning, striping, CXL-direct), evictable maps, staging buffers."""

import numpy as np
import pytest

from repro.core.flags import MemFlag
from repro.core.manager import TieredMemoryManager, classify_tiers
from repro.memory.system import NodeMemorySystem
from repro.memory.tiers import CXL, DRAM, PMEM, SWAP
from repro.policies.base import AllocationRequest, PolicyContext
from repro.util.units import MiB

from conftest import CHUNK, make_pageset, small_specs


def setup(**spec_kw):
    specs = small_specs(**spec_kw)
    node = NodeMemorySystem(specs, "n")
    ctx = PolicyContext(memory=node, rng=np.random.default_rng(0))
    mgr = TieredMemoryManager(specs)
    return node, ctx, mgr


def place(node, ctx, mgr, owner, nbytes, flags):
    ps = make_pageset(node, owner, nbytes)
    ps.region_flags[0] = flags
    mgr.place(ctx, ps, AllocationRequest(owner, 0, nbytes, flags))
    return ps


class TestClassifyTiers:
    def test_orders_by_latency(self):
        assert classify_tiers(small_specs()) == (DRAM, CXL, PMEM)

    def test_skips_empty_tiers(self):
        assert classify_tiers(small_specs(pmem=0)) == (DRAM, CXL)

    def test_requires_dram_primary(self):
        with pytest.raises(Exception):
            classify_tiers(small_specs(dram=0))


class TestLatPlacement:
    def test_lat_fills_dram_and_pins(self):
        node, ctx, mgr = setup()
        ps = place(node, ctx, mgr, "a", MiB(2), MemFlag.LAT)
        assert ps.bytes_in(DRAM) > 0
        assert ps.pinned.sum() > 0
        # pinned fraction roughly honoured on the DRAM head
        dram_chunks = ps.chunks_in(DRAM)
        assert ps.pinned.sum() <= dram_chunks.size

    def test_lat_prefaults_heat(self):
        node, ctx, mgr = setup()
        ps = place(node, ctx, mgr, "a", MiB(1), MemFlag.LAT)
        assert (ps.temperature[ps.mapped_mask] > 0).all()

    def test_lat_never_lands_in_swap(self):
        node, ctx, mgr = setup()
        ps = place(node, ctx, mgr, "a", MiB(32), MemFlag.LAT)
        assert ps.bytes_in(SWAP) == 0
        assert ps.mapped_bytes == ps.total_bytes


class TestBwPlacement:
    def test_striped_across_tiers(self):
        node, ctx, mgr = setup()
        ps = place(node, ctx, mgr, "a", MiB(3), MemFlag.BW)
        used_tiers = {t for t in (DRAM, PMEM, CXL) if ps.bytes_in(t) > 0}
        assert len(used_tiers) >= 2
        # interleaved: the leading quarter of chunks spans several tiers
        head = ps.tier[: ps.n_chunks // 4]
        assert len(set(head.tolist())) >= 2

    def test_bw_not_pinned(self):
        node, ctx, mgr = setup()
        ps = place(node, ctx, mgr, "a", MiB(2), MemFlag.BW)
        assert ps.pinned.sum() == 0


class TestCapPlacement:
    def test_cap_goes_to_cxl(self):
        node, ctx, mgr = setup()
        ps = place(node, ctx, mgr, "a", MiB(2), MemFlag.CAP)
        assert ps.bytes_in(CXL) == MiB(2)


class TestCompositePlacement:
    def test_lat_cap_split_hot_head_to_dram(self):
        node, ctx, mgr = setup()
        ps = place(node, ctx, mgr, "a", MiB(2), MemFlag.LAT | MemFlag.CAP)
        # leading (hot-by-convention) chunks are the LAT slice in DRAM
        assert ps.tier[0] == int(DRAM)
        assert ps.bytes_in(CXL) > 0

    def test_registered_flags_queryable(self):
        node, ctx, mgr = setup()
        place(node, ctx, mgr, "a", MiB(1), MemFlag.LAT | MemFlag.SHL)
        assert mgr.flags_of("a") == MemFlag.LAT | MemFlag.SHL

    def test_none_flags_go_through_predictor(self):
        node, ctx, mgr = setup()
        ps = place(node, ctx, mgr, "a", MiB(2), MemFlag.NONE)
        assert ps.mapped_bytes == ps.total_bytes  # predictor LAT|CAP default
        assert ps.bytes_in(CXL) > 0


class TestEnsureRoom:
    def test_lat_displaces_cold_unprotected_pages(self):
        node, ctx, mgr = setup()
        cap = place(node, ctx, mgr, "cap", MiB(4), MemFlag.CAP)
        filler = place(node, ctx, mgr, "filler", MiB(4), MemFlag.LAT)  # fills DRAM
        filler.pinned[:] = False
        filler.temperature[:] = 0.0
        mgr.register_workflow("filler", MemFlag.CAP)  # make it evictable
        lat = place(node, ctx, mgr, "lat", MiB(2), MemFlag.LAT)
        assert lat.bytes_in(DRAM) > 0
        node.validate()


class TestStagingBuffers:
    def test_initial_fair_share(self):
        _, _, mgr = setup()
        assert mgr.staging_buffers[DRAM] == int(MiB(4) * mgr.staging_fraction)

    def test_shrinks_under_pressure(self):
        node, ctx, mgr = setup()
        place(node, ctx, mgr, "a", MiB(4), MemFlag.LAT)  # DRAM ~full
        mgr.tick(ctx)
        assert mgr.staging_buffers[DRAM] <= int(MiB(4) * mgr.staging_fraction) // 4 + 1

    def test_grows_when_idle(self):
        node, ctx, mgr = setup()
        mgr.tick(ctx)
        assert mgr.staging_buffers[DRAM] == 2 * int(MiB(4) * mgr.staging_fraction)


class TestFinishWorkflow:
    def test_learns_and_forgets(self):
        node, ctx, mgr = setup()
        ps = place(node, ctx, mgr, "dl-0", MiB(2), MemFlag.BW | MemFlag.CAP)
        ps.temperature[:4] = 10.0
        mgr.finish_workflow("dl-0", ps, duration=42.0)
        assert mgr.flags_of("dl-0") is MemFlag.NONE
        assert mgr.predictor.store.get("dl-0") is not None
        assert mgr.allocator.allocated_to("dl-0").sum() == 0

    def test_make_room_uses_algorithm2(self):
        node, ctx, mgr = setup()
        cap = place(node, ctx, mgr, "cap", MiB(3), MemFlag.NONE)
        freed = mgr.make_room(ctx, MiB(1))
        assert freed >= 0  # smoke: routed through replacement without error

    def test_fault_in_order_is_tier_order(self):
        node, ctx, mgr = setup()
        assert mgr.fault_in_order(ctx) == (DRAM, CXL, PMEM)
