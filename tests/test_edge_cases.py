"""Edge-case sweep across modules: boundary parameters, error paths, and
rarely-hit branches."""

import numpy as np
import pytest

from repro.containers.runtime import ContainerRuntime, NetworkFabric
from repro.core.flags import MemFlag
from repro.core.manager import TieredMemoryManager
from repro.core.predictor import FlagPredictor
from repro.envs.environments import EnvKind, EnvironmentConfig, Environment, make_environment
from repro.memory.pageset import PageSet
from repro.memory.system import NodeMemorySystem
from repro.memory.tiers import CXL, DRAM, PMEM, SWAP
from repro.policies.base import AllocationRequest, MemoryPolicy, PolicyContext, cascade_place
from repro.runtime.execution import TaskState
from repro.util.units import KiB, MiB

from conftest import CHUNK, make_pageset, simple_task, small_specs


class TestManagerBoundaries:
    def _mgr_ctx(self, **mgr_kw):
        specs = small_specs()
        node = NodeMemorySystem(specs, "n")
        ctx = PolicyContext(memory=node, rng=np.random.default_rng(0))
        return TieredMemoryManager(specs, **mgr_kw), node, ctx

    def test_full_pinning(self):
        mgr, node, ctx = self._mgr_ctx(pin_fraction=1.0)
        ps = make_pageset(node, "a", MiB(1))
        mgr.place(ctx, ps, AllocationRequest("a", 0, MiB(1), MemFlag.LAT))
        dram = ps.chunks_in(DRAM)
        assert ps.pinned[dram].all()

    def test_zero_staging_fraction(self):
        mgr, node, ctx = self._mgr_ctx(staging_fraction=0.0)
        assert mgr.staging_buffers[DRAM] == 0
        ps = make_pageset(node, "a", MiB(1))
        mgr.place(ctx, ps, AllocationRequest("a", 0, MiB(1), MemFlag.LAT))
        mgr.tick(ctx)  # zero promote budget must not crash
        node.validate()

    def test_repeat_region_place_is_noop(self):
        mgr, node, ctx = self._mgr_ctx()
        ps = make_pageset(node, "a", MiB(1))
        req = AllocationRequest("a", 0, MiB(1), MemFlag.CAP)
        mgr.place(ctx, ps, req)
        before = ps.tier.copy()
        mgr.place(ctx, ps, req)  # already mapped
        assert np.array_equal(ps.tier, before)

    def test_shl_alone_behaves_like_lat(self):
        mgr, node, ctx = self._mgr_ctx()
        ps = make_pageset(node, "a", MiB(1))
        mgr.place(ctx, ps, AllocationRequest("a", 0, MiB(1), MemFlag.SHL))
        assert ps.bytes_in(DRAM) > 0
        assert ps.pinned.sum() > 0


class TestPredictorBoundaries:
    def test_single_atom_size_is_whole_request(self):
        sizes = FlagPredictor().predict_flag_sizes("k", MiB(3), MemFlag.BW)
        assert sizes == {MemFlag.BW: MiB(3)}

    def test_zero_lat_fraction(self):
        p = FlagPredictor(default_lat_fraction=0.0)
        sizes = p.predict_flag_sizes("k", MiB(4), MemFlag.LAT | MemFlag.CAP)
        assert MemFlag.LAT not in sizes or sizes[MemFlag.LAT] == 0 or True
        assert sum(sizes.values()) == MiB(4)


class TestCascadeWithExplicitSwap:
    def test_swap_in_order_not_duplicated(self, ctx):
        ps = make_pageset(ctx.memory, "a", MiB(5))
        placed = cascade_place(ctx, ps, np.arange(ps.n_chunks), (DRAM, SWAP))
        assert placed[DRAM] == MiB(4)
        assert placed[SWAP] == MiB(1)


class TestEnvironmentEdges:
    def test_stage_images_requires_imme(self):
        env = make_environment(EnvKind.TME, dram_capacity=MiB(8), chunk_size=CHUNK)
        with pytest.raises(Exception):
            env.stage_images_for([simple_task("t")])
        env.stop()

    def test_sequential_batches_share_metrics(self):
        env = make_environment(EnvKind.IMME, dram_capacity=MiB(16), chunk_size=CHUNK)
        env.run_batch([simple_task("a", footprint=MiB(1), base_time=1.0)])
        env.run_batch([simple_task("b", footprint=MiB(1), base_time=1.0)])
        assert len(env.metrics.completed()) == 2
        env.stop()

    def test_ie_config_drops_tiers_even_if_given(self):
        cfg = EnvironmentConfig(
            kind=EnvKind.IE,
            dram_capacity=MiB(8),
            pmem_capacity=MiB(8),
            cxl_capacity=MiB(8),
        )
        specs = cfg.tier_specs()
        assert specs[PMEM].capacity == 0
        assert specs[CXL].capacity == 0

    def test_environment_name(self):
        env = make_environment(EnvKind.CBE, dram_capacity=MiB(8), chunk_size=CHUNK)
        assert env.name == "CBE"
        env.stop()


class TestExecutorEdges:
    def test_explicit_none_flags_use_predictor(self, engine, metrics):
        from repro.runtime.node_agent import NodeAgent

        specs = small_specs()
        node = NodeMemorySystem(specs, "n")
        agent = NodeAgent(
            engine, node, TieredMemoryManager(specs), metrics,
            cores=4, chunk_size=CHUNK,
        )
        te = agent.start_task(
            simple_task("t", footprint=MiB(1), base_time=1.0, flags=MemFlag.LAT),
            flags=MemFlag.NONE,  # override: force predictor path
        )
        engine.run(until=50.0)
        assert te.state is TaskState.DONE
        # predictor default LAT|CAP split put the tail on CXL
        assert agent.policy.flags_of("t") is MemFlag.NONE or True

    def test_update_rate_after_done_is_noop(self, engine, metrics):
        from repro.runtime.node_agent import NodeAgent
        from repro.policies.linux import LinuxSwapPolicy

        node = NodeMemorySystem(small_specs(), "n")
        agent = NodeAgent(
            engine, node, LinuxSwapPolicy(scan_noise=0.0), metrics,
            cores=4, chunk_size=CHUNK,
        )
        te = agent.start_task(simple_task("t", footprint=MiB(1), base_time=1.0))
        engine.run(until=50.0)
        assert te.state is TaskState.DONE
        te.update_rate(0.5)  # must not resurrect the task
        assert engine.pending() >= 0


class TestContainerEdges:
    def test_zero_instantiation_time(self, engine):
        from repro.containers.image import ContainerImage, ImageRegistry

        reg = ImageRegistry()
        reg.add(ContainerImage("i.sif", MiB(1)))
        rt = ContainerRuntime(
            engine, reg, NetworkFabric(engine, 1e9), 1, instantiation_time=0.0
        )
        done = []
        rt.prepare(0, "i.sif", lambda: done.append(engine.now))
        engine.run()
        assert done and done[0] > 0  # still pays the pull

    def test_fabric_rejects_zero_bytes(self, engine):
        fabric = NetworkFabric(engine, 1e9)
        with pytest.raises(Exception):
            fabric.transfer(0, lambda: None)


class TestHeatmapDefaults:
    def test_advance_node_default_rate_is_one(self, node):
        from repro.core.heatmap import PageHeatmap

        ps = make_pageset(node, "a", 4 * CHUNK)
        ps.access_weight[:] = 0.25
        PageHeatmap().advance_node(node, 1.0)  # no rates dict
        assert ps.temperature[0] > 0

    def test_heatmap_config_validation(self):
        from repro.core.heatmap import HeatmapConfig

        with pytest.raises(Exception):
            HeatmapConfig(tau=0.0)
        with pytest.raises(Exception):
            HeatmapConfig(hot_quantile_share=1.5)


class TestPolicyDefaults:
    def test_default_make_room_returns_zero(self, ctx):
        class Minimal(MemoryPolicy):
            name = "minimal"

            def place(self, ctx, ps, request):
                pass

        assert Minimal().make_room(ctx, MiB(1)) == 0

    def test_default_tick_is_noop(self, ctx):
        class Minimal(MemoryPolicy):
            name = "minimal"

            def place(self, ctx, ps, request):
                pass

        Minimal().tick(ctx)  # must not raise


class TestMetricsEdges:
    def test_get_unknown_task_raises(self, metrics):
        with pytest.raises(Exception):
            metrics.get("ghost")

    def test_mean_exec_requires_completions(self, metrics):
        with pytest.raises(Exception):
            metrics.mean_execution_time()
