"""Equivalence and unit tests for the struct-of-arrays arena core.

The arena backend is a pure performance substrate: every observable —
tier placements, movement decisions, victim lists, RNG stream
consumption, task metrics, scenario digests — must be *identical* to
the object backend.  These tests pin that contract two ways:

* property-based (hypothesis) state generation drives each arena kernel
  and its object-path twin over randomized node states, asserting exact
  (bit-level) agreement of outputs and RNG stream positions;
* end-to-end runs — all four environments, the baseline policies, and
  fault injection (tier-offline + node crash) — compare full per-task
  metric fingerprints between backends.

Plus unit tests for the arena's own mechanics: adopt/release segment
reuse, growth re-pointing live views, and the write-through PageSet
array properties that keep external rebinds (``ps.temperature = ...``)
from detaching arena views.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

# the bit-exact equivalence suite covers the exact backends only;
# arena-fast's statistical contract is pinned in test_arena_fast.py
from repro.core.arena import (
    BACKEND_ARENA,
    BACKEND_OBJECT,
    EXACT_BACKENDS as BACKENDS,
    resolve_backend,
)
from repro.core.flags import MemFlag
from repro.core.heatmap import PageHeatmap
from repro.core.movement import IntelligentPageMovement
from repro.core.replacement import PageReplacementPolicy
from repro.envs.environments import EnvKind
from repro.faults.spec import FaultKind, FaultSchedule, FaultSpec
from repro.memory.pageset import UNMAPPED, PageSet
from repro.memory.system import NodeMemorySystem
from repro.memory.tiers import CXL, DRAM, PMEM, SWAP
from repro.policies.autonuma import AutoNumaPolicy
from repro.policies.base import PolicyContext
from repro.policies.interleave import UniformInterleavePolicy
from repro.policies.linux import global_coldest
from repro.util.rng import RngFactory
from repro.workflows.ensembles import paper_batch

from conftest import CHUNK, small_specs

EQ = settings(max_examples=30, deadline=None)

TIER_VALUES = (int(DRAM), int(PMEM), int(CXL), int(SWAP), int(UNMAPPED))
FLAG_CHOICES = (MemFlag.NONE, MemFlag.LAT, MemFlag.BW, MemFlag.SHL)


# --------------------------------------------------------------------------- #
# randomized node states
# --------------------------------------------------------------------------- #


@st.composite
def node_states(draw, max_tasks=4, max_chunks=40):
    """A list of per-task states: tiers, temperatures, pinned bits, flags."""
    n_tasks = draw(st.integers(1, max_tasks))
    tasks = []
    for _ in range(n_tasks):
        n = draw(st.integers(1, max_chunks))
        tasks.append(
            {
                "n": n,
                "chunk": CHUNK * draw(st.sampled_from([1, 2])),
                "tiers": draw(
                    st.lists(st.sampled_from(TIER_VALUES), min_size=n, max_size=n)
                ),
                "temps": draw(
                    st.lists(
                        st.floats(min_value=0.0, max_value=1.0, width=32),
                        min_size=n,
                        max_size=n,
                    )
                ),
                "pinned": draw(st.lists(st.booleans(), min_size=n, max_size=n)),
                "shadow": draw(st.lists(st.booleans(), min_size=n, max_size=n)),
                "flags": draw(st.sampled_from(FLAG_CHOICES)),
            }
        )
    return tasks


def build_node(backend, tasks, seed=11):
    """Stand up one backend's node with the given task states applied.

    Arrays are written through the PageSet properties *after* register,
    exactly the rebind pattern external code uses — so this also
    exercises the write-through path on every example.
    """
    node = NodeMemorySystem(small_specs(), f"eq-{backend}", backend=backend)
    ctx = PolicyContext(memory=node, rng=np.random.default_rng(seed))
    flags = {}
    for i, td in enumerate(tasks):
        ps = PageSet(f"t{i}", td["n"] * td["chunk"], td["chunk"])
        ps.region[:] = 0
        ps.region_flags[0] = td["flags"]
        node.register(ps)
        ps.tier = np.asarray(td["tiers"], dtype=ps.tier.dtype)
        ps.temperature = np.asarray(td["temps"], dtype=np.float32)
        ps.access_weight = np.asarray(td["temps"], dtype=np.float32) ** 2
        ps.pinned = np.asarray(td["pinned"], dtype=bool)
        ps.in_page_cache = np.asarray(td["shadow"], dtype=bool)
        flags[ps.owner] = td["flags"]
    return node, ctx, flags


def canon(victims):
    """Victim lists compare by owner order AND per-owner chunk order."""
    return [(ps.owner, idx.tolist()) for ps, idx in victims]


# --------------------------------------------------------------------------- #
# kernel equivalence (property-based)
# --------------------------------------------------------------------------- #


class TestKernelEquivalence:
    @EQ
    @given(tasks=node_states(), dt=st.sampled_from([0.25, 1.0, 3.5]))
    def test_heatmap_advance_bit_identical(self, tasks, dt):
        heat = PageHeatmap()
        rates = {f"t{i}": (0.0, 0.6, 1.7)[i % 3] for i in range(len(tasks))}
        temps = []
        for backend in BACKENDS:
            node, _, _ = build_node(backend, tasks)
            heat.advance_node(node, dt, rates)
            temps.append(np.concatenate([ps.temperature for ps in node.pagesets()]))
        assert np.array_equal(temps[0], temps[1])  # exact, not approx

    @EQ
    @given(tasks=node_states(), k=st.integers(0, 60), protect=st.booleans())
    def test_select_victims_identical(self, tasks, k, protect):
        results = []
        for backend in BACKENDS:
            node, ctx, flags = build_node(backend, tasks)
            pol = PageReplacementPolicy(lambda o: flags[o])
            results.append(
                canon(
                    pol.select_victims(
                        ctx, k, protect_owner="t0" if protect else None
                    )
                )
            )
        assert results[0] == results[1]

    @EQ
    @given(
        tasks=node_states(),
        k=st.integers(1, 60),
        noise=st.sampled_from([0.0, 0.35, 1.0]),
        tier=st.sampled_from([DRAM, SWAP]),
        pinned_ok=st.booleans(),
        skip=st.booleans(),
    )
    def test_global_coldest_identical_including_rng_stream(
        self, tasks, k, noise, tier, pinned_ok, skip
    ):
        results, probes = [], []
        for backend in BACKENDS:
            node, ctx, _ = build_node(backend, tasks, seed=23)
            out = global_coldest(
                ctx,
                tier,
                k,
                include_pinned=pinned_ok,
                skip_owners=frozenset({"t0"}) if skip else frozenset(),
                scan_noise=noise,
            )
            results.append(canon(out))
            # both paths must consume the same number of draws from the
            # shared stream, or later policy decisions diverge silently
            probes.append(int(ctx.rng.integers(1 << 30)))
        assert results[0] == results[1]
        assert probes[0] == probes[1]

    @EQ
    @given(
        tasks=node_states(),
        k=st.integers(1, 30),
        thr=st.floats(min_value=0.0, max_value=1.0, width=32),
    )
    def test_movement_candidates_identical(self, tasks, k, thr):
        node_o, _, _ = build_node(BACKEND_OBJECT, tasks)
        node_a, _, _ = build_node(BACKEND_ARENA, tasks)
        for ps_o, ps_a in zip(node_o.pagesets(), node_a.pagesets()):
            for tier in (DRAM, PMEM, CXL, SWAP):
                hot_o = IntelligentPageMovement._hot_candidates(ps_o, tier, k, thr)
                hot_a = IntelligentPageMovement._hot_candidates(ps_a, tier, k, thr)
                assert np.array_equal(hot_o, hot_a)
                cold_o = IntelligentPageMovement._cold_candidates(ps_o, tier, k, thr)
                cold_a = IntelligentPageMovement._cold_candidates(ps_a, tier, k, thr)
                assert np.array_equal(cold_o, cold_a)

    @EQ
    @given(tasks=node_states(), thr=st.floats(min_value=0.0, max_value=1.0, width=32))
    def test_reductions_match_object_accounting(self, tasks, thr):
        node_o, _, flags = build_node(BACKEND_OBJECT, tasks)
        node_a, _, _ = build_node(BACKEND_ARENA, tasks)
        arena = node_a.arena
        # per-task/tier counts against the object counts_by_tier
        counts = arena.counts_by_task_tier()
        for ps_o, ps_a in zip(node_o.pagesets(), node_a.pagesets()):
            slot = arena._tasks[ps_a.owner].slot
            expect = ps_o.counts_by_tier()
            assert counts[slot].tolist() == [int(c) for c in expect]
        # tier byte totals and shadow bytes
        used = arena.used_bytes_by_tier()
        for tier in (DRAM, PMEM, CXL, SWAP):
            expect_bytes = sum(
                int((ps.tier == int(tier)).sum()) * ps.chunk_size
                for ps in node_o.pagesets()
            )
            assert int(used[int(tier)]) == expect_bytes
        expect_shadow = sum(
            int(ps.in_page_cache.sum()) * ps.chunk_size for ps in node_o.pagesets()
        )
        assert arena.shadow_bytes() == expect_shadow
        # Algorithm 1's evictable map: cold, unpinned, unprotected
        ev = arena.evictable_bytes((DRAM, PMEM, CXL), thr, protect_owner="t0")
        for tier in (DRAM, PMEM, CXL):
            expect_bytes = sum(
                int(
                    (
                        (ps.tier == int(tier))
                        & ~ps.pinned
                        & (ps.temperature <= thr)
                    ).sum()
                )
                * ps.chunk_size
                for ps in node_o.pagesets()
                if ps.owner != "t0"
            )
            assert ev[tier] == expect_bytes


# --------------------------------------------------------------------------- #
# end-to-end equivalence
# --------------------------------------------------------------------------- #


def metrics_fingerprint(m):
    return [
        (
            t.owner,
            t.wclass,
            t.submitted_at,
            t.scheduled_at,
            t.started_at,
            t.finished_at,
            t.failed,
            t.failure_reason,
            t.major_faults,
            t.minor_faults,
            t.oom_kills,
            t.retries,
            tuple(t.phase_durations),
        )
        for t in sorted(m.tasks(), key=lambda t: t.owner)
    ]


def run_small_metrics(backend, kind, policy_factory=None, faults=None):
    """One small cluster run under ``backend``; returns the full registry."""
    from repro.experiments.common import build_env

    specs = paper_batch(12, scale=1 / 128, rng_factory=RngFactory(5))
    saved = os.environ.get("REPRO_CORE")
    os.environ["REPRO_CORE"] = backend
    try:
        env = build_env(
            kind, specs, dram_fraction=0.3, n_nodes=2, policy_factory=policy_factory
        )
        assert env.topology.nodes[0].backend == backend
        if faults is not None:
            env.inject_faults(faults, seed=3)
        metrics = env.run_batch(specs, max_time=1e7)
        env.stop()
    finally:
        if saved is None:
            os.environ.pop("REPRO_CORE", None)
        else:
            os.environ["REPRO_CORE"] = saved
    return metrics


def run_small_batch(backend, kind, policy_factory=None, faults=None):
    """One small cluster run under ``backend``; returns a metric fingerprint."""
    return metrics_fingerprint(run_small_metrics(backend, kind, policy_factory, faults))


ENV_CASES = [
    ("IE-linux", EnvKind.IE, None),
    ("CBE-linux", EnvKind.CBE, None),
    ("TME-tpp", EnvKind.TME, None),
    ("IMME-manager", EnvKind.IMME, None),
    ("TME-autonuma", EnvKind.TME, lambda specs: AutoNumaPolicy()),
    ("TME-interleave", EnvKind.TME, lambda specs: UniformInterleavePolicy()),
]


class TestEndToEndEquivalence:
    @pytest.mark.parametrize(
        "kind,policy_factory",
        [(k, p) for _, k, p in ENV_CASES],
        ids=[label for label, _, _ in ENV_CASES],
    )
    def test_environments_and_policies(self, kind, policy_factory):
        """The paper's class mix through every environment/policy: both
        backends must produce bit-identical per-task metric timelines."""
        fps = [run_small_batch(b, kind, policy_factory) for b in BACKENDS]
        assert fps[0] == fps[1]

    def test_fault_injection(self):
        """Tier-offline evacuation and a node crash mid-run: the fault
        paths (offline_tier, crash/interrupt, requeue) stay equivalent."""
        def schedule():
            return FaultSchedule(
                [
                    FaultSpec(FaultKind.TIER_OFFLINE, time=3.0, node=0, tier=PMEM,
                              duration=10.0),
                    FaultSpec(FaultKind.NODE_CRASH, time=6.0, node=1, duration=15.0),
                ]
            )

        fps = [
            run_small_batch(b, EnvKind.IMME, faults=schedule()) for b in BACKENDS
        ]
        assert fps[0] == fps[1]

    def test_scenario_digests_backend_invariant(self, monkeypatch):
        """Digests hash the scenario *spec*; the backend is a runtime
        switch and must never perturb them (the cache keys on digests)."""
        from repro.scenarios import REGISTRY

        names = REGISTRY.family_names()[:3]
        digests = []
        for backend in BACKENDS:
            monkeypatch.setenv("REPRO_CORE", backend)
            digests.append([REGISTRY.family(n).digest() for n in names])
        assert digests[0] == digests[1]


# --------------------------------------------------------------------------- #
# arena mechanics
# --------------------------------------------------------------------------- #


def arena_node(n_tasks=3, chunks=16):
    node = NodeMemorySystem(small_specs(), "mech", backend=BACKEND_ARENA)
    sets = []
    for i in range(n_tasks):
        ps = PageSet(f"t{i}", chunks * CHUNK, CHUNK)
        ps.region[:] = 0
        ps.region_flags[0] = MemFlag.NONE
        node.register(ps)
        sets.append(ps)
    return node, sets


class TestArenaMechanics:
    def test_adopt_binds_views(self):
        node, sets = arena_node()
        arena = node.arena
        for ps in sets:
            assert ps.arena is arena
            assert ps.temperature.base is arena.temperature
            assert ps.tier.base is arena.tier
        node.validate()

    def test_write_through_rebind_stays_bound(self):
        node, (ps, *_) = arena_node(n_tasks=1)
        arena = node.arena
        fresh = np.linspace(0, 1, ps.n_chunks, dtype=np.float32)
        ps.temperature = fresh  # external rebind, the bench/test idiom
        assert ps.temperature.base is arena.temperature
        assert np.array_equal(ps.temperature, fresh)
        start = arena._tasks[ps.owner].start
        assert np.array_equal(arena.temperature[start : start + ps.n_chunks], fresh)

    def test_augmented_assignment_works_in_place(self):
        node, (ps, *_) = arena_node(n_tasks=1)
        ps.temperature = np.full(ps.n_chunks, 0.5, dtype=np.float32)
        ps.temperature *= np.float32(2.0)
        assert ps.temperature.base is node.arena.temperature
        assert np.all(ps.temperature == np.float32(1.0))

    def test_release_zeroes_and_reuses_segment(self):
        node, sets = arena_node(n_tasks=3)
        arena = node.arena
        victim = sets[1]
        start, n = arena._tasks[victim.owner].start, victim.n_chunks
        victim.temperature = np.ones(n, dtype=np.float32)
        node.unregister(victim)
        # detached copy keeps its values; arena segment is scrubbed
        assert victim.arena is None
        assert np.all(victim.temperature == 1.0)
        assert np.all(arena.tier[start : start + n] == UNMAPPED)
        assert np.all(arena.task_id[start : start + n] == -1)
        # a same-size newcomer lands in the freed slot and segment
        ps_new = PageSet("fresh", n * CHUNK, CHUNK)
        ps_new.region[:] = 0
        ps_new.region_flags[0] = MemFlag.NONE
        node.register(ps_new)
        assert arena._tasks["fresh"].start == start
        node.validate()

    def test_growth_preserves_live_views_and_values(self):
        node = NodeMemorySystem(small_specs(), "grow", backend=BACKEND_ARENA)
        arena = node.arena
        ps1 = PageSet("big1", 800 * CHUNK, CHUNK)
        ps1.region[:] = 0
        ps1.region_flags[0] = MemFlag.NONE
        node.register(ps1)
        marker = np.arange(800, dtype=np.float32) / 800.0
        ps1.temperature = marker
        cap_before = arena.capacity
        ps2 = PageSet("big2", 800 * CHUNK, CHUNK)
        ps2.region[:] = 0
        ps2.region_flags[0] = MemFlag.NONE
        node.register(ps2)  # 1600 chunks: forces a grow
        assert arena.capacity > cap_before
        # ps1's views were re-pointed at the new storage, values intact
        assert ps1.temperature.base is arena.temperature
        assert np.array_equal(ps1.temperature, marker)
        node.validate()

    def test_validate_detects_detached_view(self):
        node, (ps, *_) = arena_node(n_tasks=1)
        # simulate the bug write-through properties exist to prevent:
        # a raw rebind that silently detaches the arena view
        object.__setattr__(ps, "_temperature", ps.temperature.copy())
        with pytest.raises(Exception):
            node.validate()


class TestBackendResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORE", BACKEND_ARENA)
        assert resolve_backend(BACKEND_OBJECT) == BACKEND_OBJECT

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORE", BACKEND_ARENA)
        assert resolve_backend() == BACKEND_ARENA
        monkeypatch.delenv("REPRO_CORE")
        assert resolve_backend() == BACKEND_OBJECT

    def test_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORE", "vectorised")
        with pytest.raises(Exception):
            resolve_backend()
        with pytest.raises(Exception):
            NodeMemorySystem(small_specs(), "bad", backend="vectorised")
