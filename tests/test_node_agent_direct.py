"""Direct NodeAgent tests: rate math, migration penalty, heatmap coupling,
and the workload profile helper."""

import numpy as np
import pytest

from repro.memory.system import NodeMemorySystem
from repro.policies.linux import LinuxSwapPolicy
from repro.runtime.execution import TaskState
from repro.runtime.node_agent import NodeAgent
from repro.runtime.rates import RateModelConfig
from repro.util.units import GBps, MiB
from repro.workflows.profiles import describe, expected_touched_bytes

from conftest import CHUNK, simple_task, small_specs


def make_agent(engine, metrics, **kw):
    node = NodeMemorySystem(small_specs(dram=MiB(16), cxl=MiB(64)), "n0")
    return NodeAgent(
        engine, node, LinuxSwapPolicy(scan_noise=0.0), metrics,
        cores=8, chunk_size=CHUNK, **kw,
    )


class TestMigrationPenalty:
    def test_window_converts_to_penalty_and_resets(self, engine, metrics):
        agent = make_agent(engine, metrics)
        agent.memory.migration_bytes_window = int(
            agent.memory.specs[list(agent.memory.specs)[0]].bandwidth
        )  # one second of DRAM bandwidth worth of movement
        penalty = agent._migration_penalty()
        assert penalty == pytest.approx(agent.rate_config.migration_overhead_coeff)
        assert agent.memory.migration_bytes_window == 0
        assert agent._migration_penalty() == 0.0  # window consumed

    def test_zero_window_zero_penalty(self, engine, metrics):
        agent = make_agent(engine, metrics)
        assert agent._migration_penalty() == 0.0


class TestRecomputeRates:
    def test_idle_node_clears_window(self, engine, metrics):
        agent = make_agent(engine, metrics)
        agent.memory.migration_bytes_window = 12345
        agent.recompute_rates()
        assert agent.memory.migration_bytes_window == 0

    def test_rates_reflect_contention_instantly(self, engine, metrics):
        agent = make_agent(engine, metrics)
        t0 = agent.start_task(
            simple_task("t0", footprint=MiB(1), base_time=10.0,
                        lat_frac=0.0, bw_frac=0.9, demand_bandwidth=GBps(90)))
        solo_rate = t0.current_rate
        agent.start_task(
            simple_task("t1", footprint=MiB(1), base_time=10.0,
                        lat_frac=0.0, bw_frac=0.9, demand_bandwidth=GBps(90)))
        assert t0.current_rate < solo_rate

    def test_daemon_heats_only_running_tasks(self, engine, metrics):
        agent = make_agent(engine, metrics)
        te = agent.start_task(simple_task("t", footprint=MiB(1), base_time=5.0))
        engine.run(until=2.5)
        ps = agent.memory.get_pageset("t")
        assert ps.temperature.max() > 0

    def test_trace_hook_without_tracer_is_cheap(self, engine, metrics):
        agent = make_agent(engine, metrics)
        agent.trace("task", "x", event="whatever")  # no tracer: no-op


class TestAgentBookkeeping:
    def test_active_owners_follow_lifecycle(self, engine, metrics):
        agent = make_agent(engine, metrics)
        agent.start_task(simple_task("t", footprint=MiB(1), base_time=1.0))
        assert "t" in agent.context.active_owners
        engine.run(until=50.0)
        assert "t" not in agent.context.active_owners

    def test_capacity_freed_callbacks_fire(self, engine, metrics):
        agent = make_agent(engine, metrics)
        fired = []
        agent.on_capacity_freed.append(lambda: fired.append(engine.now))
        agent.start_task(simple_task("t", footprint=MiB(1), base_time=1.0))
        engine.run(until=50.0)
        assert len(fired) == 1

    def test_stop_halts_daemon(self, engine, metrics):
        agent = make_agent(engine, metrics)
        agent.start_task(simple_task("t", footprint=MiB(1), base_time=1.0))
        engine.run(until=5.0)
        agent.stop()
        pending_before = agent._daemon.ticks
        engine.run(until=50.0)
        assert agent._daemon.ticks == pending_before


class TestProfiles:
    def test_describe_renders_key_facts(self):
        from repro.workflows.library import scientific_task

        spec = scientific_task(scale=1 / 64, request_extra=True)
        text = describe(spec)
        assert "SC" in text
        assert "build-tree" in text and "bfs" in text
        assert "CAP" in text
        assert "dynamic growth" in text

    def test_expected_touched_bytes(self):
        spec = simple_task("t", footprint=MiB(4))
        assert expected_touched_bytes(spec) == MiB(4)  # touched_fraction = 1

    def test_describe_shared_and_limit(self):
        from dataclasses import replace

        from repro.workflows.library import with_shared_input

        spec = with_shared_input(simple_task("t", footprint=MiB(4)), "data", MiB(8))
        spec = replace(spec, memory_limit=MiB(6))
        text = describe(spec)
        assert "memory.max" in text
        assert "data" in text
