"""Cross-module integration tests: the qualitative orderings the paper's
evaluation rests on, at miniature scale."""

import pytest

from repro.core.flags import MemFlag
from repro.envs.environments import EnvKind, make_environment
from repro.util.units import GBps, KiB, MiB
from repro.workflows.patterns import HotColdPattern
from repro.workflows.task import TaskPhase, TaskSpec, WorkloadClass

CHUNK = KiB(64)


def lat_task(name, footprint=MiB(4)):
    return TaskSpec(
        name=name,
        wclass=WorkloadClass.DM,
        footprint=footprint,
        wss=footprint,
        phases=(
            TaskPhase(
                "etl", base_time=5.0, compute_frac=0.3, lat_frac=0.65, bw_frac=0.05,
                demand_bandwidth=GBps(1.0),
                pattern=HotColdPattern(hot_fraction=0.4, hot_share=0.85),
            ),
        ),
        flags=MemFlag.LAT | MemFlag.SHL,
        cores=1,
    )


def cap_task(name, footprint=MiB(16)):
    return TaskSpec(
        name=name,
        wclass=WorkloadClass.SC,
        footprint=footprint,
        wss=footprint // 2,
        phases=(
            TaskPhase(
                "sweep", base_time=8.0, compute_frac=0.6, lat_frac=0.3, bw_frac=0.1,
                demand_bandwidth=GBps(2.0),
                pattern=HotColdPattern(hot_fraction=0.2, hot_share=0.8),
            ),
        ),
        flags=MemFlag.CAP,
        cores=1,
    )


def run_env(kind, specs, dram, **kw):
    env = make_environment(kind, dram_capacity=dram, chunk_size=CHUNK, **kw)
    metrics = env.run_batch(specs, max_time=1e6)
    env.stop()
    return metrics


def mixed_batch():
    return [lat_task("dm-0"), lat_task("dm-1"), cap_task("sc-0"), cap_task("sc-1")]


class TestEnvironmentOrdering:
    def test_cbe_much_slower_than_ie(self):
        specs = mixed_batch()
        total = sum(s.footprint for s in specs)
        ie = run_env(EnvKind.IE, specs, dram=2 * total)
        cbe = run_env(EnvKind.CBE, specs, dram=total // 4)
        assert cbe.makespan() > 1.5 * ie.makespan()

    def test_tiered_memory_recovers_most_of_the_loss(self):
        specs = mixed_batch()
        total = sum(s.footprint for s in specs)
        cbe = run_env(EnvKind.CBE, specs, dram=total // 4)
        tme = run_env(EnvKind.TME, specs, dram=total // 4)
        assert tme.makespan() < cbe.makespan()

    def test_imme_at_least_matches_tme(self):
        specs = mixed_batch()
        total = sum(s.footprint for s in specs)
        tme = run_env(EnvKind.TME, specs, dram=total // 4)
        imme = run_env(EnvKind.IMME, specs, dram=total // 4)
        assert imme.makespan() <= tme.makespan() * 1.10

    def test_imme_protects_latency_sensitive_tasks(self):
        """The core claim: DM-class execution time under IMME stays near
        ideal even when DRAM is scarce."""
        specs = mixed_batch()
        total = sum(s.footprint for s in specs)
        ie = run_env(EnvKind.IE, specs, dram=2 * total)
        imme = run_env(EnvKind.IMME, specs, dram=total // 4)
        ideal_dm = ie.mean_execution_time("DM")
        imme_dm = imme.mean_execution_time("DM")
        assert imme_dm <= ideal_dm * 1.30


class TestFaultConversion:
    def test_imme_replaces_majors_with_minors(self):
        specs = mixed_batch()
        total = sum(s.footprint for s in specs)
        cbe = run_env(EnvKind.CBE, specs, dram=total // 4)
        imme = run_env(EnvKind.IMME, specs, dram=total // 4)
        cbe_major, _ = cbe.total_faults()
        imme_major, imme_minor = imme.total_faults()
        assert imme_major < cbe_major
        assert imme_minor >= 0

    def test_imme_avoids_disk_swap(self):
        specs = mixed_batch()
        total = sum(s.footprint for s in specs)
        env = make_environment(EnvKind.IMME, dram_capacity=total // 4, chunk_size=CHUNK)
        env.run_batch(specs, max_time=1e6)
        traffic = env.node_traffic()
        assert traffic["swapped_out_bytes"] == 0
        assert traffic["migrated_to_cxl_bytes"] >= 0
        env.stop()


class TestInvariantsUnderLoad:
    @pytest.mark.parametrize("kind", [EnvKind.CBE, EnvKind.TME, EnvKind.IMME])
    def test_accounting_survives_a_full_run(self, kind):
        specs = mixed_batch()
        total = sum(s.footprint for s in specs)
        env = make_environment(
            kind, dram_capacity=total // 4, chunk_size=CHUNK, validate_invariants=True
        )
        metrics = env.run_batch(specs, max_time=1e6)
        env.topology.validate()
        assert len(metrics.completed()) == len(specs)
        # all memory returned
        for node in env.topology.nodes:
            for tier in (0, 1, 2, 3):
                assert node._used[tier] == 0  # noqa: SLF001 - invariant check
        env.stop()

    def test_deterministic_repeat(self):
        specs = mixed_batch()
        total = sum(s.footprint for s in specs)
        m1 = run_env(EnvKind.IMME, specs, dram=total // 4)
        m2 = run_env(EnvKind.IMME, mixed_batch(), dram=total // 4)
        assert m1.makespan() == pytest.approx(m2.makespan(), rel=1e-9)
