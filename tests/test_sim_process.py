"""PeriodicProcess and RateTracker tests, including a hypothesis check
that piecewise-constant rate integration conserves work."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import SimulationEngine
from repro.sim.process import PeriodicProcess, RateTracker
from repro.util.errors import SimulationError


class TestPeriodicProcess:
    def test_ticks_at_interval(self, engine):
        times = []
        p = PeriodicProcess(engine, 2.0, lambda now: times.append(now))
        p.start()
        engine.run(until=7.0)
        assert times == [2.0, 4.0, 6.0]
        assert p.ticks == 3

    def test_stop_ends_ticks(self, engine):
        times = []
        p = PeriodicProcess(engine, 1.0, lambda now: times.append(now))
        p.start()
        engine.run(until=2.5)
        p.stop()
        engine.run(until=10.0)
        assert times == [1.0, 2.0]
        assert not p.running

    def test_double_start_rejected(self, engine):
        p = PeriodicProcess(engine, 1.0, lambda now: None)
        p.start()
        with pytest.raises(SimulationError):
            p.start()

    def test_callback_can_stop_self(self, engine):
        p = PeriodicProcess(engine, 1.0, lambda now: p.stop())
        p.start()
        engine.run(until=5.0)
        assert p.ticks == 1

    def test_invalid_interval(self, engine):
        with pytest.raises(Exception):
            PeriodicProcess(engine, 0.0, lambda now: None)


class TestRateTracker:
    def test_drains_at_rate(self):
        t = RateTracker(10.0)
        t.set_rate(0.0, 2.0)
        assert t.projected_finish(0.0) == pytest.approx(5.0)

    def test_rate_change_mid_flight(self):
        t = RateTracker(10.0)
        t.set_rate(0.0, 1.0)
        t.set_rate(5.0, 0.5)  # 5 units done, 5 left at half speed
        assert t.projected_finish(5.0) == pytest.approx(15.0)

    def test_zero_rate_stalls(self):
        t = RateTracker(10.0)
        t.set_rate(0.0, 0.0)
        assert t.projected_finish(1.0) is None
        assert t.progress_to(100.0) == 10.0

    def test_done_flag(self):
        t = RateTracker(1.0)
        t.set_rate(0.0, 1.0)
        t.progress_to(2.0)
        assert t.done
        assert t.projected_finish(2.0) == 2.0

    def test_time_cannot_go_backwards(self):
        t = RateTracker(10.0)
        t.set_rate(5.0, 1.0)
        with pytest.raises(SimulationError):
            t.progress_to(4.0)

    def test_negative_rate_rejected(self):
        t = RateTracker(1.0)
        with pytest.raises(Exception):
            t.set_rate(0.0, -1.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=5.0),   # dt
                st.floats(min_value=0.0, max_value=4.0),    # rate
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_work_conservation(self, segments):
        """Drained work equals the integral of rate over time."""
        total = 1000.0
        t = RateTracker(total)
        now = 0.0
        drained = 0.0
        rate = 0.0
        for dt, new_rate in segments:
            before = t.progress_to(now)
            t.set_rate(now, new_rate)
            now += dt
            rate = new_rate
            drained = min(total, drained + dt * rate)
        remaining = t.progress_to(now)
        assert remaining == pytest.approx(total - drained, abs=1e-6)
