"""PeriodicProcess and RateTracker tests, including a hypothesis check
that piecewise-constant rate integration conserves work."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import SimulationEngine
from repro.sim.process import PeriodicProcess, RateTracker, TickGroup
from repro.util.errors import SimulationError


class TestPeriodicProcess:
    def test_ticks_at_interval(self, engine):
        times = []
        p = PeriodicProcess(engine, 2.0, lambda now: times.append(now))
        p.start()
        engine.run(until=7.0)
        assert times == [2.0, 4.0, 6.0]
        assert p.ticks == 3

    def test_stop_ends_ticks(self, engine):
        times = []
        p = PeriodicProcess(engine, 1.0, lambda now: times.append(now))
        p.start()
        engine.run(until=2.5)
        p.stop()
        engine.run(until=10.0)
        assert times == [1.0, 2.0]
        assert not p.running

    def test_double_start_rejected(self, engine):
        p = PeriodicProcess(engine, 1.0, lambda now: None)
        p.start()
        with pytest.raises(SimulationError):
            p.start()

    def test_callback_can_stop_self(self, engine):
        p = PeriodicProcess(engine, 1.0, lambda now: p.stop())
        p.start()
        engine.run(until=5.0)
        assert p.ticks == 1

    def test_invalid_interval(self, engine):
        with pytest.raises(Exception):
            PeriodicProcess(engine, 0.0, lambda now: None)


class TestTickGroup:
    """Coalesced periodic events: one heap entry services every member."""

    def test_members_share_one_event(self, engine):
        g = TickGroup(engine, 1.0)
        seen = []
        for name in "abc":
            g.add(lambda now, n=name: seen.append((n, now)))
        assert engine.pending() == 1  # one coalesced event, not three
        engine.run(until=2.0)
        assert seen == [
            ("a", 1.0), ("b", 1.0), ("c", 1.0),
            ("a", 2.0), ("b", 2.0), ("c", 2.0),
        ]
        assert g.ticks == 2

    def test_matches_periodic_process_cadence(self, engine):
        g_times, p_times = [], []
        g = TickGroup(engine, 2.0)
        g.add(lambda now: g_times.append(now))
        p = PeriodicProcess(engine, 2.0, lambda now: p_times.append(now))
        p.start()
        engine.run(until=7.0)
        assert g_times == p_times == [2.0, 4.0, 6.0]

    def test_remove_mid_tick_skips_callback(self, engine):
        g = TickGroup(engine, 1.0)
        fired = []

        def first(now):
            fired.append("first")
            g.remove(h2)

        g.add(first)
        h2 = g.add(lambda now: fired.append("second"))
        engine.run(until=1.0)
        assert fired == ["first"]

    def test_add_during_tick_joins_next_tick(self, engine):
        g = TickGroup(engine, 1.0)
        fired = []

        def first(now):
            fired.append(("first", now))
            if now == 1.0:
                g.add(lambda t: fired.append(("late", t)))

        g.add(first)
        engine.run(until=2.0)
        assert fired == [("first", 1.0), ("first", 2.0), ("late", 2.0)]
        assert engine.pending() == 1  # still exactly one coalesced event

    def test_last_member_leaving_cancels_event(self, engine):
        g = TickGroup(engine, 1.0)
        h = g.add(lambda now: None)
        assert engine.pending() == 1 and g.running
        g.remove(h)
        assert engine.pending() == 0
        assert not g.running

    def test_remove_is_idempotent(self, engine):
        g = TickGroup(engine, 1.0)
        h = g.add(lambda now: None)
        g.remove(h)
        g.remove(h)
        assert engine.pending() == 0
        assert engine.events_cancelled == 1  # counted exactly once

    def test_leave_and_rejoin_mid_tick_does_not_double_schedule(self, engine):
        # a member replacing itself from its own callback exercises the
        # _firing guard: add() must not schedule while the sweep runs
        g = TickGroup(engine, 1.0)
        ticks = []
        handle = [None]

        def leave_and_rejoin(now):
            ticks.append(now)
            g.remove(handle[0])
            handle[0] = g.add(leave_and_rejoin)

        handle[0] = g.add(leave_and_rejoin)
        engine.run(until=3.0)
        assert ticks == [1.0, 2.0, 3.0]
        assert engine.pending() == 1

    def test_invalid_interval(self, engine):
        with pytest.raises(Exception):
            TickGroup(engine, 0.0)


class TestRateTracker:
    def test_drains_at_rate(self):
        t = RateTracker(10.0)
        t.set_rate(0.0, 2.0)
        assert t.projected_finish(0.0) == pytest.approx(5.0)

    def test_rate_change_mid_flight(self):
        t = RateTracker(10.0)
        t.set_rate(0.0, 1.0)
        t.set_rate(5.0, 0.5)  # 5 units done, 5 left at half speed
        assert t.projected_finish(5.0) == pytest.approx(15.0)

    def test_zero_rate_stalls(self):
        t = RateTracker(10.0)
        t.set_rate(0.0, 0.0)
        assert t.projected_finish(1.0) is None
        assert t.progress_to(100.0) == 10.0

    def test_done_flag(self):
        t = RateTracker(1.0)
        t.set_rate(0.0, 1.0)
        t.progress_to(2.0)
        assert t.done
        assert t.projected_finish(2.0) == 2.0

    def test_time_cannot_go_backwards(self):
        t = RateTracker(10.0)
        t.set_rate(5.0, 1.0)
        with pytest.raises(SimulationError):
            t.progress_to(4.0)

    def test_negative_rate_rejected(self):
        t = RateTracker(1.0)
        with pytest.raises(Exception):
            t.set_rate(0.0, -1.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=5.0),   # dt
                st.floats(min_value=0.0, max_value=4.0),    # rate
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_work_conservation(self, segments):
        """Drained work equals the integral of rate over time."""
        total = 1000.0
        t = RateTracker(total)
        now = 0.0
        drained = 0.0
        rate = 0.0
        for dt, new_rate in segments:
            before = t.progress_to(now)
            t.set_rate(now, new_rate)
            now += dt
            rate = new_rate
            drained = min(total, drained + dt * rate)
        remaining = t.progress_to(now)
        assert remaining == pytest.approx(total - drained, abs=1e-6)
