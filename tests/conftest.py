"""Shared fixtures: small tier specs, nodes, agents, and task builders.

Everything here is sized in KiB/MiB so the whole suite runs in seconds;
the policies only ever see ratios, so small sizes exercise the same code
paths as testbed-scale ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.flags import MemFlag
from repro.memory.pageset import PageSet
from repro.memory.system import NodeMemorySystem
from repro.memory.tiers import CXL, DRAM, PMEM, SWAP, TierKind, TierSpec
from repro.metrics.collector import MetricsRegistry
from repro.policies.base import PolicyContext
from repro.sim.engine import SimulationEngine
from repro.util.units import GBps, KiB, MiB, ns, us
from repro.workflows.patterns import HotColdPattern
from repro.workflows.task import TaskPhase, TaskSpec, WorkloadClass

CHUNK = KiB(64)


def pytest_collection_modifyitems(config, items):
    """Skip ``requires_bit_exact`` tests under ``REPRO_CORE=arena-fast``.

    Those tests pin the exact per-pageset movement path chunk-for-chunk;
    the arena-fast backend replaces that path with batched kernels whose
    contract is statistical (see test_arena_fast.py), so asserting exact
    chunk subsets there would test code the backend never runs.
    """
    from repro.core.arena import BACKEND_ARENA_FAST, resolve_backend

    if resolve_backend() != BACKEND_ARENA_FAST:
        return
    skip = pytest.mark.skip(
        reason="pins the exact movement path; REPRO_CORE=arena-fast routes around it"
    )
    for item in items:
        if "requires_bit_exact" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_cache(tmp_path_factory):
    """Point the default result cache at a per-session temp dir.

    ``run_all`` caches by default; without this, test runs would write to
    (and on re-runs read from) the user's ~/.cache, coupling test results
    to whatever earlier runs left behind.
    """
    import os

    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("result-cache"))
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


def small_specs(
    dram=MiB(4), pmem=MiB(8), cxl=MiB(64), swap=MiB(64)
) -> dict[TierKind, TierSpec]:
    """Four tiers with testbed-like latencies but tiny capacities."""
    return {
        DRAM: TierSpec(DRAM, dram, ns(80), GBps(100), GBps(80), "ddr"),
        PMEM: TierSpec(PMEM, pmem, ns(300), GBps(30), GBps(8), "ddr-t"),
        CXL: TierSpec(CXL, cxl, ns(140), GBps(30), GBps(25), "cxl"),
        SWAP: TierSpec(SWAP, swap, us(90), GBps(2.5), GBps(1.5), "nvme", byte_addressable=False),
    }


@pytest.fixture
def specs():
    return small_specs()


@pytest.fixture
def node(specs):
    return NodeMemorySystem(specs, node_id="test-node")


@pytest.fixture
def ctx(node):
    return PolicyContext(memory=node, rng=np.random.default_rng(7))


@pytest.fixture
def engine():
    return SimulationEngine()


@pytest.fixture
def metrics():
    return MetricsRegistry()


def make_pageset(
    node: NodeMemorySystem, owner: str, nbytes: int, chunk_size: int = CHUNK
) -> PageSet:
    """Registered pageset with every chunk in region 0 (ready to place)."""
    ps = PageSet(owner, nbytes, chunk_size)
    ps.region[:] = 0
    ps.region_flags[0] = MemFlag.NONE
    node.register(ps)
    return ps


def simple_task(
    name: str = "t0",
    footprint: int = MiB(1),
    *,
    base_time: float = 10.0,
    lat_frac: float = 0.3,
    bw_frac: float = 0.2,
    demand_bandwidth: float = GBps(1.0),
    flags: MemFlag = MemFlag.NONE,
    n_phases: int = 1,
    cores: int = 1,
    wclass: WorkloadClass = WorkloadClass.GENERIC,
) -> TaskSpec:
    phases = tuple(
        TaskPhase(
            name=f"p{i}",
            base_time=base_time,
            compute_frac=1.0 - lat_frac - bw_frac,
            lat_frac=lat_frac,
            bw_frac=bw_frac,
            demand_bandwidth=demand_bandwidth,
            pattern=HotColdPattern(hot_fraction=0.25, hot_share=0.9),
        )
        for i in range(n_phases)
    )
    return TaskSpec(
        name=name,
        wclass=wclass,
        footprint=footprint,
        wss=max(1, footprint // 2),
        phases=phases,
        flags=flags,
        cores=cores,
    )
