"""Metrics collection and report-formatting tests."""

import pytest

from repro.metrics.collector import MetricsRegistry, TaskMetrics
from repro.metrics.report import (
    best_of,
    format_pct,
    format_series,
    format_table,
    improvement,
)


def done_task(reg, name, submitted=0.0, start=1.0, end=5.0, wclass="DL"):
    tm = reg.task(name, wclass)
    tm.submitted_at = submitted
    tm.scheduled_at = submitted + 0.2
    tm.container_ready_at = start
    tm.started_at = start
    tm.finished_at = end
    return tm


class TestTaskMetrics:
    def test_durations(self):
        reg = MetricsRegistry()
        tm = done_task(reg, "t", submitted=0.0, start=2.0, end=7.0)
        assert tm.execution_time == 5.0
        assert tm.turnaround == 7.0
        assert tm.queue_wait == pytest.approx(0.2)
        assert tm.startup_time == pytest.approx(1.8)
        assert tm.done

    def test_unfinished_task_raises(self):
        tm = TaskMetrics(owner="x")
        with pytest.raises(Exception):
            _ = tm.execution_time

    def test_failed_not_done(self):
        reg = MetricsRegistry()
        tm = done_task(reg, "t")
        tm.failed = True
        assert not tm.done


class TestRegistry:
    def test_task_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.task("a") is reg.task("a")
        assert len(reg) == 1

    def test_makespan(self):
        reg = MetricsRegistry()
        done_task(reg, "a", submitted=0.0, end=5.0)
        done_task(reg, "b", submitted=1.0, end=9.0)
        assert reg.makespan() == 9.0

    def test_makespan_requires_completions(self):
        with pytest.raises(Exception):
            MetricsRegistry().makespan()

    def test_mean_execution_time_filters_class(self):
        reg = MetricsRegistry()
        done_task(reg, "a", start=0.0, end=10.0, wclass="DL")
        done_task(reg, "b", start=0.0, end=20.0, wclass="DM")
        assert reg.mean_execution_time("DL") == 10.0
        assert reg.mean_execution_time() == 15.0

    def test_total_faults(self):
        reg = MetricsRegistry()
        t = done_task(reg, "a", wclass="DL")
        t.major_faults = 3
        t.minor_faults = 7
        assert reg.total_faults("DL") == (3, 7)
        assert reg.total_faults("DM") == (0, 0)

    def test_failed_listing(self):
        reg = MetricsRegistry()
        tm = done_task(reg, "a")
        tm.failed = True
        assert [t.owner for t in reg.failed()] == ["a"]
        assert reg.completed() == []

    def test_mean_startup(self):
        reg = MetricsRegistry()
        done_task(reg, "a", submitted=0.0, start=1.0)
        assert reg.mean_startup_time() == pytest.approx(0.8)


class TestReporting:
    def test_format_table_aligns(self):
        out = format_table(["env", "DL"], [["IE", 1.5], ["CBE", 10.25]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("env")
        assert "IE" in lines[3] and "1.50" in lines[3]
        assert "10.25" in lines[4]

    def test_format_series(self):
        assert format_series("TME", ["10%", "20%"], [1.0, 2.0]) == "TME: 10%=1.00, 20%=2.00"

    def test_improvement(self):
        assert improvement(10.0, 5.0) == pytest.approx(0.5)
        assert improvement(10.0, 12.0) == pytest.approx(-0.2)
        assert improvement(0.0, 5.0) == 0.0

    def test_format_pct(self):
        assert format_pct(0.466) == "46.6%"

    def test_best_of(self):
        assert best_of({"IE": 2.0, "IMME": 1.0}) == "IMME"
