"""AutoNUMA-baseline tests."""

import numpy as np
import pytest

from repro.memory.tiers import CXL, DRAM, PMEM, SWAP
from repro.policies.autonuma import AutoNumaPolicy
from repro.policies.base import AllocationRequest
from repro.policies.tpp import TieredDemandPolicy
from repro.util.units import MiB

from conftest import CHUNK, make_pageset


def place_all(ctx, policy, owner, nbytes):
    ps = make_pageset(ctx.memory, owner, nbytes)
    policy.place(ctx, ps, AllocationRequest(owner, 0, nbytes))
    return ps


class TestPlacement:
    def test_demand_overflow(self, ctx):
        policy = AutoNumaPolicy(scan_noise=0.0)
        ps = place_all(ctx, policy, "a", MiB(6))
        assert ps.bytes_in(DRAM) == MiB(4)
        assert ps.bytes_in(CXL) == MiB(2)


class TestSampledPromotion:
    def test_only_sampled_hot_pages_promote(self, ctx):
        policy = AutoNumaPolicy(sample_fraction=0.10, promote_threshold=0.1, scan_noise=0.0)
        ps = make_pageset(ctx.memory, "a", MiB(2))
        ctx.memory.place(ps, np.arange(ps.n_chunks), CXL)
        ps.temperature[:] = 5.0  # everything is hot
        policy.tick(ctx)
        promoted = ps.counts_by_tier()[int(DRAM)]
        # sampling promotes roughly sample_fraction per tick, not everything
        assert 0 < promoted <= max(1, int(ps.n_chunks * 0.25))

    def test_promotion_slower_than_tpp(self, ctx):
        """The defining difference: TPP's full temperature scan promotes the
        hot set faster than AutoNUMA's sampling."""
        auto_ps = make_pageset(ctx.memory, "auto", MiB(2))
        ctx.memory.place(auto_ps, np.arange(auto_ps.n_chunks), CXL)
        auto_ps.temperature[:] = 5.0
        tpp_ps = make_pageset(ctx.memory, "tpp", MiB(2))
        ctx.memory.place(tpp_ps, np.arange(tpp_ps.n_chunks), CXL)
        tpp_ps.temperature[:] = 5.0

        auto = AutoNumaPolicy(sample_fraction=0.05, promote_threshold=0.1, scan_noise=0.0)
        tpp = TieredDemandPolicy(
            promote_budget_fraction=1.0, promote_threshold=0.1, scan_noise=0.0
        )
        # one tick each, each policy scanning only its own pageset's share:
        # compare promoted counts for the same state
        before_auto = auto_ps.counts_by_tier()[int(DRAM)]
        auto.tick(ctx)
        promoted_auto = auto_ps.counts_by_tier()[int(DRAM)] - before_auto
        before_tpp = tpp_ps.counts_by_tier()[int(DRAM)]
        tpp.tick(ctx)
        promoted_tpp = tpp_ps.counts_by_tier()[int(DRAM)] - before_tpp
        assert promoted_tpp > promoted_auto

    def test_cold_sampled_pages_stay(self, ctx):
        policy = AutoNumaPolicy(sample_fraction=1.0, promote_threshold=0.1, scan_noise=0.0)
        ps = make_pageset(ctx.memory, "a", MiB(1))
        ctx.memory.place(ps, np.arange(ps.n_chunks), CXL)
        policy.tick(ctx)
        assert ps.bytes_in(DRAM) == 0

    def test_promotion_counts_minor_faults(self, ctx):
        minors = []
        ctx.record_minor = lambda owner, n: minors.append(n)
        policy = AutoNumaPolicy(sample_fraction=1.0, promote_threshold=0.1, scan_noise=0.0)
        ps = make_pageset(ctx.memory, "a", MiB(1))
        ctx.memory.place(ps, np.arange(ps.n_chunks), CXL)
        ps.temperature[:] = 5.0
        policy.tick(ctx)
        assert sum(minors) > 0


class TestReclaim:
    def test_reclaims_to_swap_not_cxl(self, ctx):
        """No demotion path: pressure sends pages to disk even though CXL
        has room — AutoNUMA's tiered-memory blind spot."""
        policy = AutoNumaPolicy(
            high_watermark=0.5, low_watermark=0.25, scan_noise=0.0
        )
        ps = place_all(ctx, policy, "a", MiB(3))
        ps.temperature[:] = 0.0
        policy.tick(ctx)
        assert ps.bytes_in(SWAP) > 0
        ctx.memory.validate()
