"""SLURM-like scheduler tests: queueing, placement, backfill, lifecycle."""

import pytest

from repro.containers.image import ContainerImage, ImageRegistry
from repro.containers.runtime import ContainerRuntime, NetworkFabric
from repro.memory.system import NodeMemorySystem
from repro.policies.linux import LinuxSwapPolicy
from repro.runtime.node_agent import NodeAgent
from repro.scheduler.job import JobState
from repro.scheduler.slurm import SlurmScheduler
from repro.util.units import GBps, MiB

from conftest import CHUNK, simple_task, small_specs


def make_sched(engine, metrics, n_nodes=2, cores=4):
    agents = [
        NodeAgent(
            engine,
            NodeMemorySystem(small_specs(dram=MiB(64), cxl=MiB(256)), f"n{i}"),
            LinuxSwapPolicy(scan_noise=0.0),
            metrics,
            cores=cores,
            chunk_size=CHUNK,
        )
        for i in range(n_nodes)
    ]
    reg = ImageRegistry()
    reg.add(ContainerImage("default.sif", MiB(100)))
    fabric = NetworkFabric(engine, GBps(1.0))
    containers = ContainerRuntime(engine, reg, fabric, n_nodes, instantiation_time=0.1)
    return SlurmScheduler(engine, agents, containers, metrics), agents


class TestSubmission:
    def test_job_runs_and_completes(self, engine, metrics):
        sched, _ = make_sched(engine, metrics)
        job = sched.submit(simple_task("t", footprint=MiB(1), base_time=2.0))
        sched.run_to_completion()
        assert job.state is JobState.DONE
        tm = metrics.get("t")
        assert tm.done
        assert tm.queue_wait == 0.0
        assert tm.startup_time > 0  # image pull + instantiation

    def test_batch_all_complete(self, engine, metrics):
        sched, _ = make_sched(engine, metrics)
        jobs = sched.submit_batch(
            [simple_task(f"t{i}", footprint=MiB(1), base_time=1.0) for i in range(6)]
        )
        sched.run_to_completion()
        assert all(j.state is JobState.DONE for j in jobs)
        assert len(metrics.completed()) == 6

    def test_on_done_callback(self, engine, metrics):
        sched, _ = make_sched(engine, metrics)
        done = []
        sched.submit(simple_task("t", base_time=1.0), on_done=lambda j: done.append(j.name))
        sched.run_to_completion()
        assert done == ["t"]


class TestPlacement:
    def test_least_loaded_spreads_jobs(self, engine, metrics):
        sched, agents = make_sched(engine, metrics, n_nodes=2, cores=4)
        jobs = sched.submit_batch(
            [simple_task(f"t{i}", cores=2, base_time=1.0) for i in range(4)]
        )
        sched.run_to_completion()
        nodes_used = {j.node_index for j in jobs}
        assert nodes_used == {0, 1}

    def test_queueing_when_cores_exhausted(self, engine, metrics):
        sched, _ = make_sched(engine, metrics, n_nodes=1, cores=2)
        jobs = sched.submit_batch(
            [simple_task(f"t{i}", cores=2, base_time=2.0) for i in range(3)]
        )
        # only one can hold the node at a time; the rest wait
        assert sched.pending_count == 2
        sched.run_to_completion()
        waits = [metrics.get(f"t{i}").queue_wait for i in range(3)]
        assert max(waits) > 0

    def test_backfill_lets_small_jobs_jump(self, engine, metrics):
        sched, _ = make_sched(engine, metrics, n_nodes=1, cores=4)
        sched.submit(simple_task("big0", cores=4, base_time=2.0))
        sched.submit(simple_task("big1", cores=4, base_time=2.0))  # must wait
        small = sched.submit(simple_task("small", cores=1, base_time=1.0))
        # small cannot start either (cores full), but when big0 ends the
        # pump considers the whole queue
        sched.run_to_completion()
        assert small.state is JobState.DONE

    def test_oversized_job_never_fits(self, engine, metrics):
        sched, _ = make_sched(engine, metrics, n_nodes=1, cores=2)
        sched.submit(simple_task("huge", cores=16))
        with pytest.raises(Exception, match="deadlock"):
            sched.run_to_completion()


class TestFailureHandling:
    def test_failed_task_marks_job_failed(self, engine, metrics):
        sched, agents = make_sched(engine, metrics, n_nodes=1)
        # shrink the node's memory so the job cannot be backed at all
        small_node = NodeMemorySystem(
            small_specs(dram=CHUNK, pmem=0, cxl=0, swap=CHUNK), "tiny"
        )
        agents[0].memory = small_node
        agents[0].context.memory = small_node
        job = sched.submit(simple_task("doomed", footprint=MiB(8)))
        sched.run_to_completion()
        assert job.state is JobState.FAILED
        assert metrics.get("doomed").failed

    def test_all_done_property(self, engine, metrics):
        sched, _ = make_sched(engine, metrics)
        assert sched.all_done  # vacuously
        sched.submit(simple_task("t", base_time=1.0))
        assert not sched.all_done
        sched.run_to_completion()
        assert sched.all_done
