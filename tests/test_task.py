"""TaskSpec / TaskPhase validation and derived-quantity tests."""

import pytest

from repro.core.flags import MemFlag
from repro.util.errors import ConfigurationError
from repro.util.units import GBps, MiB
from repro.workflows.task import DynamicRequest, TaskPhase, TaskSpec, WorkloadClass

from conftest import simple_task


def phase(**kw):
    defaults = dict(
        name="p", base_time=10.0, compute_frac=0.5, lat_frac=0.3, bw_frac=0.2
    )
    defaults.update(kw)
    return TaskPhase(**defaults)


class TestTaskPhase:
    def test_valid(self):
        p = phase()
        assert p.ideal_time == 10.0

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigurationError, match="sum to 1"):
            phase(compute_frac=0.5, lat_frac=0.5, bw_frac=0.5)

    def test_negative_base_time_rejected(self):
        with pytest.raises(ConfigurationError):
            phase(base_time=0.0)

    def test_touched_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            phase(touched_fraction=1.5)

    def test_dynamic_request_validation(self):
        with pytest.raises(ConfigurationError):
            DynamicRequest(0)


class TestTaskSpec:
    def test_wss_cannot_exceed_footprint(self):
        with pytest.raises(ConfigurationError):
            TaskSpec(
                name="t",
                wclass=WorkloadClass.GENERIC,
                footprint=MiB(1),
                wss=MiB(2),
                phases=(phase(),),
            )

    def test_needs_phases(self):
        with pytest.raises(ConfigurationError):
            TaskSpec(
                name="t",
                wclass=WorkloadClass.GENERIC,
                footprint=MiB(1),
                wss=MiB(1),
                phases=(),
            )

    def test_ideal_duration_sums_phases(self):
        spec = simple_task(n_phases=3, base_time=5.0)
        assert spec.ideal_duration == 15.0

    def test_max_footprint_includes_dynamic(self):
        p = phase(allocate=DynamicRequest(MiB(2)))
        spec = TaskSpec(
            name="t",
            wclass=WorkloadClass.GENERIC,
            footprint=MiB(4),
            wss=MiB(2),
            phases=(p,),
        )
        assert spec.max_footprint == MiB(6)

    def test_effective_flags_fall_back_to_class(self):
        spec = simple_task(wclass=WorkloadClass.DM)
        assert spec.effective_flags == MemFlag.LAT | MemFlag.SHL

    def test_explicit_flags_win(self):
        spec = simple_task(wclass=WorkloadClass.DM, flags=MemFlag.CAP)
        assert spec.effective_flags is MemFlag.CAP

    def test_with_name(self):
        spec = simple_task()
        assert spec.with_name("other").name == "other"

    def test_with_flags_normalises(self):
        spec = simple_task().with_flags([MemFlag.LAT, MemFlag.BW])
        assert spec.flags == MemFlag.LAT | MemFlag.BW


class TestScaled:
    def test_footprint_scales(self):
        spec = simple_task(footprint=MiB(8))
        assert spec.scaled(0.5).footprint == MiB(4)

    def test_durations_do_not_scale(self):
        spec = simple_task(base_time=10.0)
        assert spec.scaled(0.25).ideal_duration == spec.ideal_duration

    def test_dynamic_requests_scale(self):
        p = phase(allocate=DynamicRequest(MiB(4)))
        spec = TaskSpec(
            name="t",
            wclass=WorkloadClass.GENERIC,
            footprint=MiB(8),
            wss=MiB(4),
            phases=(p,),
        )
        scaled = spec.scaled(0.5)
        assert scaled.phases[0].allocate.nbytes == MiB(2)

    def test_never_scales_to_zero(self):
        spec = simple_task(footprint=MiB(1))
        assert spec.scaled(1e-9).footprint >= 1


class TestWorkloadClassDefaults:
    @pytest.mark.parametrize(
        "cls,expected",
        [
            (WorkloadClass.DL, MemFlag.BW | MemFlag.CAP),
            (WorkloadClass.DM, MemFlag.LAT | MemFlag.SHL),
            (WorkloadClass.DC, MemFlag.BW | MemFlag.CAP),
            (WorkloadClass.SC, MemFlag.CAP),
            (WorkloadClass.GENERIC, MemFlag.NONE),
        ],
    )
    def test_default_flags(self, cls, expected):
        assert cls.default_flags == expected
