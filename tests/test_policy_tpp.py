"""TPP-style tiered demand policy (TME) tests."""

import numpy as np
import pytest

from repro.core.flags import MemFlag
from repro.memory.tiers import CXL, DRAM, PMEM, SWAP
from repro.policies.base import AllocationRequest
from repro.policies.tpp import TieredDemandPolicy
from repro.util.units import MiB

from conftest import CHUNK, make_pageset


def place_all(ctx, policy, owner, nbytes):
    ps = make_pageset(ctx.memory, owner, nbytes)
    policy.place(ctx, ps, AllocationRequest(owner, 0, nbytes))
    return ps


class TestPlacement:
    def test_overflow_order_dram_cxl_pmem(self, ctx):
        # DRAM 4M, CXL 64M: a 6M allocation spills 2M to CXL, none to PMem
        policy = TieredDemandPolicy(scan_noise=0.0)
        ps = place_all(ctx, policy, "a", MiB(6))
        assert ps.bytes_in(DRAM) == MiB(4)
        assert ps.bytes_in(CXL) == MiB(2)
        assert ps.bytes_in(PMEM) == 0

    def test_oblivious_to_flags(self, ctx):
        policy = TieredDemandPolicy(scan_noise=0.0)
        ps = make_pageset(ctx.memory, "a", MiB(6))
        policy.place(ctx, ps, AllocationRequest("a", 0, MiB(6), MemFlag.LAT))
        # identical placement regardless of the LAT hint
        assert ps.bytes_in(DRAM) == MiB(4)

    def test_forced_cxl_fraction_strided(self, ctx):
        policy = TieredDemandPolicy(cxl_fraction=0.5, scan_noise=0.0)
        ps = place_all(ctx, policy, "a", MiB(2))
        cxl_chunks = ps.chunks_in(CXL)
        assert cxl_chunks.size == ps.n_chunks // 2
        # strided across the range, not a contiguous tail: the first half
        # of the footprint must contain some CXL chunks
        assert (cxl_chunks < ps.n_chunks // 2).any()

    def test_cxl_fraction_validation(self):
        with pytest.raises(Exception):
            TieredDemandPolicy(cxl_fraction=1.5)


class TestDemotion:
    def test_pressure_demotes_to_cxl_not_swap(self, ctx):
        policy = TieredDemandPolicy(
            high_watermark=0.5, low_watermark=0.25, scan_noise=0.0
        )
        ps = place_all(ctx, policy, "a", MiB(3))
        policy.tick(ctx)
        assert ps.bytes_in(SWAP) == 0
        assert ps.bytes_in(CXL) > 0
        assert ctx.memory.rss(DRAM) <= 0.25 * ctx.memory.capacity(DRAM) + CHUNK


class TestPromotion:
    def test_hot_cxl_pages_promoted(self, ctx):
        policy = TieredDemandPolicy(
            promote_budget_fraction=1.0, promote_threshold=0.1, scan_noise=0.0
        )
        ps = make_pageset(ctx.memory, "a", MiB(2))
        ctx.memory.place(ps, np.arange(ps.n_chunks), CXL)
        ps.temperature[:4] = 5.0
        policy.tick(ctx)
        assert set(np.flatnonzero(ps.tier == int(DRAM))) == {0, 1, 2, 3}

    def test_promotion_counts_minor_faults(self, ctx):
        minors = []
        ctx.record_minor = lambda owner, n: minors.append(n)
        policy = TieredDemandPolicy(
            promote_budget_fraction=1.0, promote_threshold=0.1, scan_noise=0.0
        )
        ps = make_pageset(ctx.memory, "a", MiB(1))
        ctx.memory.place(ps, np.arange(ps.n_chunks), CXL)
        ps.temperature[:2] = 5.0
        policy.tick(ctx)
        assert sum(minors) == 2

    def test_cold_pages_not_promoted(self, ctx):
        policy = TieredDemandPolicy(
            promote_budget_fraction=1.0, promote_threshold=0.1, scan_noise=0.0
        )
        ps = make_pageset(ctx.memory, "a", MiB(1))
        ctx.memory.place(ps, np.arange(ps.n_chunks), CXL)
        policy.tick(ctx)
        assert ps.bytes_in(DRAM) == 0

    def test_budget_limits_promotion(self, ctx):
        policy = TieredDemandPolicy(
            promote_budget_fraction=CHUNK / ctx.memory.capacity(DRAM),
            promote_threshold=0.1,
            scan_noise=0.0,
        )
        ps = make_pageset(ctx.memory, "a", MiB(1))
        ctx.memory.place(ps, np.arange(ps.n_chunks), CXL)
        ps.temperature[:] = 5.0
        policy.tick(ctx)
        assert ps.counts_by_tier()[int(DRAM)] == 1
