"""Fault-injection subsystem: specs, schedules, evacuation, requeue,
pull retries, and the injector's end-to-end recovery guarantees."""

import numpy as np
import pytest

from repro.containers.image import ContainerImage, ImageRegistry
from repro.containers.runtime import ContainerRuntime, NetworkFabric
from repro.core.manager import TieredMemoryManager
from repro.faults import FaultInjector, FaultKind, FaultSchedule, FaultSpec
from repro.memory.system import NodeMemorySystem
from repro.memory.tiers import CXL, DRAM, PMEM, SWAP
from repro.metrics.collector import MetricsRegistry
from repro.runtime.node_agent import NodeAgent
from repro.scheduler.job import JobState
from repro.scheduler.slurm import SlurmScheduler
from repro.sim.trace import Tracer
from repro.util.errors import ConfigurationError
from repro.util.units import KiB, MiB

from conftest import CHUNK, make_pageset, simple_task, small_specs


def make_registry(image_size):
    reg = ImageRegistry()
    reg.add(ContainerImage("img.sif", image_size))
    return reg


# --------------------------------------------------------------------------- #
# spec / schedule
# --------------------------------------------------------------------------- #
class TestFaultSpec:
    def test_tiered_kinds_require_tier(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.TIER_OFFLINE, time=1.0)

    def test_swap_cannot_fail(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.TIER_OFFLINE, time=1.0, tier=SWAP)

    def test_severity_is_a_fraction(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.TASK_STRAGGLER, time=0.0, severity=1.5)

    def test_schedule_sorts_by_time(self):
        sched = FaultSchedule(
            [
                FaultSpec(FaultKind.NODE_CRASH, time=9.0, node=0),
                FaultSpec(FaultKind.NODE_CRASH, time=1.0, node=1),
            ]
        )
        assert [f.time for f in sched] == [1.0, 9.0]
        sched.add(FaultSpec(FaultKind.NODE_CRASH, time=4.0, node=2))
        assert [f.time for f in sched] == [1.0, 4.0, 9.0]
        assert sched.kinds() == {"node-crash": 3}


# --------------------------------------------------------------------------- #
# tier offline / degradation (memory system)
# --------------------------------------------------------------------------- #
class TestTierOffline:
    def test_evacuates_to_survivors(self, node):
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(ps.n_chunks), PMEM)
        evacuated, stranded = node.offline_tier(PMEM)
        assert evacuated == MiB(1)
        assert stranded == {}
        assert node.rss(PMEM) == 0
        assert not node.tier_online(PMEM)
        assert node.capacity(PMEM) == 0
        node.validate()

    def test_offline_tier_refuses_placement(self, node):
        ps = make_pageset(node, "a", MiB(1))
        node.offline_tier(PMEM)
        from repro.util.errors import AllocationError

        with pytest.raises(AllocationError, match="offline"):
            node.place(ps, np.arange(ps.n_chunks), PMEM)

    def test_strands_when_nothing_fits(self):
        # survivors too small: DRAM 128K, CXL 128K, swap 128K for a 1 MiB set
        specs = small_specs(dram=KiB(128), pmem=MiB(2), cxl=KiB(128), swap=KiB(128))
        node = NodeMemorySystem(specs, "strand")
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(ps.n_chunks), PMEM)
        evacuated, stranded = node.offline_tier(PMEM)
        assert "a" in stranded
        assert evacuated == KiB(128) * 3  # every survivor filled first
        node.validate()

    def test_idempotent_and_reversible(self, node):
        assert node.offline_tier(CXL) == (0, {})
        assert node.offline_tier(CXL) == (0, {})  # second call is a no-op
        node.online_tier(CXL)
        assert node.tier_online(CXL)
        assert node.capacity(CXL) > 0

    def test_dram_offline_drops_page_cache(self, node):
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(ps.n_chunks), PMEM)
        node.add_page_cache_shadow(ps, np.arange(4))
        assert node.page_cache_used > 0
        node.offline_tier(DRAM)
        assert node.page_cache_used == 0
        node.validate()

    def test_degradation_scales_health(self, node):
        assert node.tier_health().tolist() == [1.0, 1.0, 1.0, 1.0]
        node.set_tier_degraded(CXL, 0.25)
        assert node.tier_health()[int(CXL)] == 0.25
        node.offline_tier(PMEM)
        assert node.tier_health()[int(PMEM)] == 0.0
        node.clear_tier_degradation(CXL)
        node.online_tier(PMEM)
        assert node.tier_health().tolist() == [1.0, 1.0, 1.0, 1.0]


# --------------------------------------------------------------------------- #
# node agent crash / restore
# --------------------------------------------------------------------------- #
def make_agent(engine, metrics, *, cores=4, specs=None, policy=None):
    specs = specs if specs is not None else small_specs()
    node = NodeMemorySystem(specs, "n0")
    return NodeAgent(
        engine,
        node,
        policy if policy is not None else TieredMemoryManager(specs),
        metrics,
        cores=cores,
        chunk_size=CHUNK,
        validate_invariants=True,
    )


def oom_prone_task(name="t0"):
    """A CBE-style victim: dynamic growth under a tight memory cap."""
    from dataclasses import replace

    from repro.core.flags import MemFlag
    from repro.workflows.task import DynamicRequest

    spec = simple_task(name, footprint=MiB(1), n_phases=2)
    phases = list(spec.phases)
    phases[1] = replace(
        phases[1], allocate=DynamicRequest(MiB(1) // 2, MemFlag.CAP)
    )
    return replace(
        spec,
        phases=tuple(phases),
        image="img.sif",
        memory_limit=int(MiB(1) * 1.1),
    )


class TestNodeCrash:
    def test_crash_kills_running_tasks(self, engine, metrics):
        agent = make_agent(engine, metrics)
        agent.start_task(simple_task("t0", footprint=MiB(1)))
        engine.run(until=1.0)
        assert agent.crash() == 1
        assert agent.down
        assert not agent.running
        assert agent.cores_used == 0
        assert metrics.get("t0").failed
        assert metrics.faults.tasks_interrupted == 1
        assert not agent.can_host(simple_task("t1"))

    def test_crash_releases_memory(self, engine, metrics):
        agent = make_agent(engine, metrics)
        agent.start_task(simple_task("t0", footprint=MiB(1)))
        engine.run(until=1.0)
        agent.crash()
        assert sum(agent.memory.rss(t) for t in (DRAM, PMEM, CXL, SWAP)) == 0
        agent.memory.validate()

    def test_crash_is_idempotent_and_restorable(self, engine, metrics):
        agent = make_agent(engine, metrics)
        agent.crash()
        assert agent.crash() == 0
        agent.restore()
        assert not agent.down
        agent.start_task(simple_task("t1", footprint=MiB(1)))
        engine.run(until=60.0)
        assert metrics.get("t1").done

    def test_interrupted_flag_distinguishes_fault_from_oom(self, engine, metrics):
        agent = make_agent(engine, metrics)
        te = agent.start_task(simple_task("t0", footprint=MiB(1)))
        engine.run(until=1.0)
        assert te.interrupt("chaos") is True
        assert te.interrupted
        assert te.interrupt("chaos") is False  # already dead

    def test_tier_offline_handler_recomputes_and_traces(self, engine, metrics):
        tracer = Tracer(["fault"])
        agent = make_agent(engine, metrics)
        agent.tracer = tracer
        agent.start_task(simple_task("t0", footprint=MiB(1)))
        engine.run(until=1.0)
        agent.handle_tier_offline(PMEM)
        events = tracer.events("fault")
        assert any(e.data.get("event") == "tier-offline" for e in events)
        agent.handle_tier_online(PMEM)
        assert agent.memory.tier_online(PMEM)


# --------------------------------------------------------------------------- #
# scheduler requeue / drain
# --------------------------------------------------------------------------- #
def make_cluster(engine, metrics, *, n_nodes=2, cores=4, max_retries=2,
                 retry_backoff=1.0, image_size=KiB(64), policy_factory=None):
    registry = make_registry(image_size)
    fabric = NetworkFabric(engine)
    containers = ContainerRuntime(
        engine, registry, fabric, n_nodes, metrics=metrics,
        pull_retry_backoff=0.5,
    )
    specs = small_specs()
    if policy_factory is None:
        policy_factory = TieredMemoryManager
    agents = [
        NodeAgent(
            engine,
            NodeMemorySystem(specs, f"n{i}"),
            policy_factory(specs),
            metrics,
            cores=cores,
            chunk_size=CHUNK,
            node_index=i,
        )
        for i in range(n_nodes)
    ]
    scheduler = SlurmScheduler(
        engine, agents, containers, metrics,
        max_retries=max_retries, retry_backoff=retry_backoff,
    )
    return scheduler, agents, containers


def task_with_image(name, **kw):
    from dataclasses import replace

    return replace(simple_task(name, footprint=MiB(1), **kw), image="img.sif")


class TestSchedulerRequeue:
    def test_node_failure_requeues_to_survivor(self, engine, metrics):
        scheduler, agents, _ = make_cluster(engine, metrics)
        job = scheduler.submit(task_with_image("t0"))
        engine.run(until=2.0)
        assert job.state is JobState.RUNNING
        crashed = job.node_index
        scheduler.node_failed(crashed)
        assert job.retries == 1
        assert scheduler.requeues == 1
        assert metrics.faults.job_requeues == 1
        scheduler.run_to_completion(max_time=1e5)
        assert job.state is JobState.DONE
        assert job.node_index != crashed  # the dead node stayed drained
        assert metrics.get("t0").done
        assert metrics.get("t0").retries == 1

    def test_retries_exhausted_fails_job(self, engine, metrics):
        scheduler, agents, _ = make_cluster(
            engine, metrics, max_retries=1, retry_backoff=0.5
        )
        job = scheduler.submit(task_with_image("t0"))

        def crash_current_node() -> None:
            if job.state is JobState.RUNNING:
                i = job.node_index
                scheduler.node_failed(i)
                scheduler.node_restored(i)

        # kill the job's node every 2 s until its retry budget is gone
        for t in (2.0, 6.0, 10.0):
            engine.schedule(t, crash_current_node, "chaos")
        scheduler.run_to_completion(max_time=1e5)
        assert job.state is JobState.FAILED
        assert job.retries == 1
        assert metrics.faults.retries_exhausted == 1
        tm = metrics.get("t0")
        assert tm.failed and "retries exhausted" in tm.failure_reason

    def test_oom_kill_is_not_requeued(self, engine, metrics):
        from repro.policies.linux import LinuxSwapPolicy

        # CBE-style cluster: the dynamic CAP request lands in charged
        # local memory and trips the cgroup — terminal, never requeued
        scheduler, _, _ = make_cluster(
            engine, metrics, policy_factory=lambda specs: LinuxSwapPolicy()
        )
        job = scheduler.submit(oom_prone_task("t0"))
        scheduler.run_to_completion(max_time=1e5)
        assert job.state is JobState.FAILED
        assert job.retries == 0
        assert scheduler.requeues == 0
        assert metrics.get("t0").oom_kills == 1

    def test_drain_undrain(self, engine, metrics):
        scheduler, agents, _ = make_cluster(engine, metrics, n_nodes=2)
        scheduler.drain(0)
        scheduler.drain(1)
        job = scheduler.submit(task_with_image("t0"))
        engine.run(until=5.0)
        assert job.state is JobState.PENDING  # nowhere to go
        scheduler.undrain(0)
        scheduler.run_to_completion(max_time=1e5)
        assert job.state is JobState.DONE
        assert job.node_index == 0

    def test_starting_job_requeued_on_node_crash(self, engine, metrics):
        # crash while the image pull is still in flight: the stale
        # container-ready callback must not double-start the job
        scheduler, agents, _ = make_cluster(engine, metrics, image_size=MiB(64))
        job = scheduler.submit(task_with_image("t0"))
        assert job.state is JobState.STARTING
        scheduler.node_failed(job.node_index)
        assert job.retries == 1
        scheduler.run_to_completion(max_time=1e6)
        assert job.state is JobState.DONE


# --------------------------------------------------------------------------- #
# container pull retries / CXL fallback
# --------------------------------------------------------------------------- #
class _FailFirstN:
    """Deterministic rng stub: first ``n`` draws fail, then all succeed."""

    def __init__(self, n):
        self.n = n

    def random(self):
        self.n -= 1
        return 0.0 if self.n >= 0 else 1.0


class TestPullRetries:
    def test_transient_failure_retries_then_succeeds(self, engine, metrics):
        scheduler, _, containers = make_cluster(engine, metrics)
        containers.set_pull_failures(0.99, _FailFirstN(2))
        job = scheduler.submit(task_with_image("t0"))
        scheduler.run_to_completion(max_time=1e5)
        assert job.state is JobState.DONE
        assert containers.pull_retries == 2
        assert metrics.faults.pull_retries == 2
        assert containers.failed_pulls == 0

    def test_exhausted_pulls_requeue_job(self, engine, metrics):
        scheduler, _, containers = make_cluster(
            engine, metrics, max_retries=0
        )
        containers.set_pull_failures(0.99, _FailFirstN(1000))
        job = scheduler.submit(task_with_image("t0"))
        scheduler.run_to_completion(max_time=1e5)
        assert job.state is JobState.FAILED
        assert containers.failed_pulls >= 1
        assert metrics.faults.retries_exhausted == 1

    def test_cxl_link_down_falls_back_to_network(self, engine, metrics):
        from repro.core.sharing import SharedMemoryManager
        from repro.memory.topology import SharedCXLPool

        registry = make_registry(KiB(64))
        fabric = NetworkFabric(engine)
        shm = SharedMemoryManager(SharedCXLPool(MiB(64)), 1)
        containers = ContainerRuntime(
            engine, registry, fabric, 1, shared_memory=shm, metrics=metrics
        )
        containers.stage_image("img.sif")
        done = []
        containers.set_node_cxl(0, False)
        containers.prepare(0, "img.sif", lambda: done.append(1))
        engine.run(until=1e4)
        assert done == [1]
        assert containers.cxl_reads == 0
        assert containers.network_pulls == 1
        assert containers.pull_fallbacks == 1
        assert metrics.faults.pull_fallbacks == 1
        # link back up: next node-cache-miss prepare reads from CXL
        containers.set_node_cxl(0, True)


# --------------------------------------------------------------------------- #
# injector end-to-end
# --------------------------------------------------------------------------- #
class TestInjector:
    def test_straggler_slows_then_recovers(self, engine, metrics):
        scheduler, agents, containers = make_cluster(engine, metrics, n_nodes=1)
        job = scheduler.submit(task_with_image("t0", base_time=100.0))
        engine.run(until=2.0)
        schedule = FaultSchedule(
            [FaultSpec(FaultKind.TASK_STRAGGLER, time=2.0, node=0,
                       duration=10.0, severity=0.5)]
        )
        injector = FaultInjector(
            engine, agents, scheduler, containers, metrics, schedule
        )
        injector.start()
        engine.run(until=4.0)
        te = agents[0].running["t0"]
        assert te.rate_scale == 0.5
        assert metrics.faults.injected.get("task-straggler") == 1
        engine.run(until=20.0)
        assert te.rate_scale == 1.0  # recovered
        assert len(metrics.faults.recovery_times) == 1
        scheduler.run_to_completion(max_time=1e5)
        assert job.state is JobState.DONE

    def test_node_crash_fault_recovers_cluster(self, engine, metrics):
        scheduler, agents, containers = make_cluster(engine, metrics, n_nodes=1)
        job = scheduler.submit(task_with_image("t0", base_time=30.0))
        schedule = FaultSchedule(
            [FaultSpec(FaultKind.NODE_CRASH, time=3.0, node=0, duration=5.0)]
        )
        tracer = Tracer(["fault"])
        injector = FaultInjector(
            engine, agents, scheduler, containers, metrics, schedule,
            tracer=tracer,
        )
        injector.start()
        scheduler.run_to_completion(max_time=1e5)
        assert job.state is JobState.DONE
        assert job.retries == 1
        assert metrics.faults.injected == {"node-crash": 1}
        assert metrics.faults.mttr == pytest.approx(5.0)
        subjects = {e.data.get("event") for e in tracer.events("fault")}
        assert {"injected", "recovered"} <= subjects

    def test_inapplicable_fault_is_skipped(self, engine, metrics):
        scheduler, agents, containers = make_cluster(engine, metrics, n_nodes=1)
        agents[0].memory.offline_tier(CXL)
        schedule = FaultSchedule(
            [FaultSpec(FaultKind.CXL_LINK_FLAP, time=0.0, node=0)]
        )
        injector = FaultInjector(
            engine, agents, scheduler, containers, metrics, schedule
        )
        injector.inject_now(schedule[0])
        assert injector.fired == 0
        assert metrics.faults.total_injected == 0

    def test_oom_kill_emits_trace_event(self, engine, metrics):
        from repro.policies.linux import LinuxSwapPolicy

        tracer = Tracer(["oom"])
        agent = make_agent(engine, metrics, policy=LinuxSwapPolicy())
        agent.tracer = tracer
        agent.start_task(oom_prone_task("t0"))
        engine.run(until=1e4)
        events = tracer.events("oom")
        assert len(events) == 1
        assert events[0].data["event"] == "oom-kill"
        assert metrics.get("t0").oom_kills == 1
        assert metrics.get("t0").failed
