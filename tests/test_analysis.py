"""Analysis-subpackage tests: replication stats and sweeps."""

import numpy as np
import pytest

from repro.analysis.stats import ReplicationResult, relative_improvement, replicate
from repro.analysis.sweeps import makespan_metric, mean_exec_metric, sweep
from repro.envs.environments import EnvKind, make_environment
from repro.util.units import KiB, MiB

from conftest import simple_task

CHUNK = KiB(64)


class TestReplicationResult:
    def test_mean_std_cv(self):
        r = ReplicationResult("x", (10.0, 12.0, 11.0, 9.0))
        assert r.mean == pytest.approx(10.5)
        assert r.std == pytest.approx(np.std([10, 12, 11, 9], ddof=1))
        assert r.cv == pytest.approx(r.std / r.mean)

    def test_single_value_degenerate(self):
        r = ReplicationResult("x", (5.0,))
        assert r.std == 0.0
        assert r.cv == 0.0
        assert r.ci95() == (5.0, 5.0)

    def test_ci_contains_mean(self):
        r = ReplicationResult("x", tuple(np.linspace(9, 11, 10)))
        lo, hi = r.ci95()
        assert lo < r.mean < hi
        assert hi - lo < 2.0  # tight for low-variance data

    def test_replicate_calls_each_seed(self):
        seen = []

        def fn(seed):
            seen.append(seed)
            return float(seed)

        r = replicate(fn, seeds=(1, 2, 3), label="m")
        assert seen == [1, 2, 3]
        assert r.values == (1.0, 2.0, 3.0)

    def test_relative_improvement(self):
        base = ReplicationResult("b", (10.0, 10.0))
        fast = ReplicationResult("f", (5.0, 5.0))
        assert relative_improvement(base, fast) == pytest.approx(0.5)

    def test_needs_a_seed(self):
        with pytest.raises(Exception):
            replicate(lambda s: 1.0, seeds=())


class TestSweep:
    def _build(self, kind, dram_mib):
        return make_environment(kind, dram_capacity=MiB(dram_mib), chunk_size=CHUNK)

    def test_grid_shape_and_values(self):
        specs = [simple_task("t0", footprint=MiB(1), base_time=1.0)]
        calls = []

        def run(env, value):
            calls.append((env.name, value))
            return env.run_batch([simple_task(f"t-{env.name}-{value}", footprint=MiB(1), base_time=1.0)])

        result = sweep(
            name="demo",
            description="demo sweep",
            values=[8, 16],
            kinds=[EnvKind.IE, EnvKind.IMME],
            build=self._build,
            run=run,
        )
        assert set(result.series) == {"IE", "IMME"}
        assert result.xlabels == ["8", "16"]
        assert len(calls) == 4
        assert all(v > 0 for vals in result.series.values() for v in vals)

    def test_mean_exec_metric_filters_class(self):
        def run(env, value):
            return env.run_batch(
                [simple_task(f"m-{env.name}-{value}", footprint=MiB(1), base_time=2.0)]
            )

        result = sweep(
            name="demo",
            description="d",
            values=[16],
            kinds=[EnvKind.IE],
            build=self._build,
            run=run,
            metric=mean_exec_metric("GENERIC"),
        )
        assert result.series["IE"][0] == pytest.approx(2.0, rel=0.1)

    def test_custom_xlabel(self):
        def run(env, value):
            return env.run_batch(
                [simple_task(f"x-{value}", footprint=MiB(1), base_time=1.0)]
            )

        result = sweep(
            name="demo",
            description="d",
            values=[0.5],
            kinds=[EnvKind.IE],
            build=lambda k, v: self._build(k, 16),
            run=run,
            xlabel=lambda v: f"{int(v * 100)}%",
        )
        assert result.xlabels == ["50%"]

    def test_empty_grid_rejected(self):
        with pytest.raises(Exception):
            sweep(
                name="x", description="d", values=[], kinds=[EnvKind.IE],
                build=self._build, run=lambda e, v: None,
            )


class TestPaperVarianceClaim:
    def test_cv_under_five_percent_across_seeds(self):
        """§IV-B: <5% variance between executions of the same experiment."""
        from repro.experiments.common import build_env, colocated_mix, run_and_collect
        from repro.workflows import WorkloadClass

        def measure(seed: int) -> float:
            specs = colocated_mix(
                {WorkloadClass.DM: 2, WorkloadClass.SC: 1}, scale=1 / 512, seed=seed
            )
            env = build_env(EnvKind.IMME, specs, dram_fraction=0.3, chunk_size=CHUNK)
            return run_and_collect(env, specs).makespan()

        r = replicate(measure, seeds=(0, 1, 2, 3), label="imme-makespan")
        assert r.cv < 0.05
