"""Result-codec round-trips: every FigureResult the harnesses produce must
survive encode/decode byte-identically (to_csv/to_table), and a cached run
must be indistinguishable from a live one."""

import dataclasses
import enum

import numpy as np
import pytest

from repro.cache import CODEC_VERSION, CodecError, ResultCache, cell_keys, decode, encode
from repro.experiments import (
    run_ablations,
    run_cold_pages,
    run_colocation,
    run_decomposition,
    run_failures,
    run_fig05,
    run_fig08,
    run_fig09,
    run_fig10,
    run_fig11,
    run_open_system,
    run_predictor_learning,
    run_resilience,
    run_shared_inputs,
    run_utilization,
    run_validation,
)
from repro.experiments.common import FigureResult
from repro.util.units import KiB
from repro.workflows.task import WorkloadClass

TINY = 1.0 / 512.0
CHUNK = KiB(256)
MIX1 = {
    WorkloadClass.DL: 2,
    WorkloadClass.DM: 2,
    WorkloadClass.DC: 1,
    WorkloadClass.SC: 1,
}


def roundtrip(obj):
    return decode(encode(obj))


class TestPrimitives:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -(2**40),
            1.5,
            -0.0,
            float("inf"),
            "text",
            "uniçode",
            b"\x00\xffraw",
            (1, (2, "a")),
            [1.0, [2.0]],
            {"k": [1, 2], "nested": {"x": (1,)}},
            {1: "int-key", (2, 3): "tuple-key"},
            {"__t__": "looks-tagged"},
            WorkloadClass.DL,
            {WorkloadClass.SC: 4},
        ],
    )
    def test_exact_roundtrip(self, value):
        out = roundtrip(value)
        assert out == value
        assert type(out) is type(value)

    def test_nan_roundtrips(self):
        out = roundtrip(float("nan"))
        assert isinstance(out, float) and out != out

    def test_float_precision_exact(self):
        for v in [0.1, 1 / 3, 2**-1074, 1.7976931348623157e308]:
            assert roundtrip(v) == v

    def test_tuple_vs_list_preserved(self):
        assert type(roundtrip((1, 2))) is tuple
        assert type(roundtrip([1, 2])) is list


class TestNumpy:
    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(6, dtype=np.int32),
            np.linspace(0, 1, 7, dtype=np.float32),
            np.array([], dtype=np.float64),
            np.array([[1, 2], [3, 4]], dtype=np.uint8),
            np.array([True, False]),
            np.array([1 + 2j], dtype=np.complex128),
        ],
        ids=["i32", "f32", "empty", "2d-u8", "bool", "c128"],
    )
    def test_arrays_preserve_dtype_shape_values(self, arr):
        out = roundtrip(arr)
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        np.testing.assert_array_equal(out, arr)

    def test_scalars_preserve_type(self):
        for v in [np.float64(2.5), np.float32(0.1), np.int64(-3), np.bool_(True)]:
            out = roundtrip(v)
            assert type(out) is type(v)
            assert out == v

    def test_object_arrays_rejected(self):
        with pytest.raises(CodecError):
            encode(np.array([object()], dtype=object))


class TestStructured:
    def test_dataclass_roundtrip(self):
        r = FigureResult("figX", "desc", ["a", "b"])
        r.add_series("s", [1.0, 2.0])
        r.notes.append("note")
        out = roundtrip(r)
        assert isinstance(out, FigureResult)
        assert out == r

    def test_unsupported_types_rejected(self):
        for bad in [object(), {1, 2}, lambda: None, type("L", (), {})()]:
            with pytest.raises(CodecError):
                encode(bad)

    def test_local_dataclass_rejected(self):
        @dataclasses.dataclass
        class Local:
            x: int = 1

        with pytest.raises(CodecError):
            encode(Local())

    def test_local_enum_rejected(self):
        class LocalE(enum.Enum):
            A = 1

        with pytest.raises(CodecError):
            encode(LocalE.A)

    def test_envelope_is_versioned(self):
        import json

        env = json.loads(encode({"x": 1}))
        assert env["codec"] == CODEC_VERSION

    def test_foreign_codec_version_rejected(self):
        with pytest.raises(CodecError):
            decode(b'{"codec": 0, "payload": null}')


HARNESSES = [
    ("fig05", lambda: run_fig05(scale=TINY, instances_per_class=MIX1, chunk_size=CHUNK)),
    (
        "fig08",
        lambda: run_fig08(
            scale=TINY,
            instances_per_class=1,
            fractions=(0.25, 1.0),
            chunk_size=CHUNK,
            classes=(WorkloadClass.DM,),
        ),
    ),
    ("fig09", lambda: run_fig09(scale=TINY, instances_per_class=MIX1, chunk_size=CHUNK)),
    (
        "fig10",
        lambda: run_fig10(scale=TINY, total_instances=8, node_counts=(2, 4), chunk_size=CHUNK),
    ),
    (
        "fig11",
        lambda: run_fig11(scale=TINY, instance_counts=(4, 12), n_nodes=2, chunk_size=CHUNK),
    ),
    ("ext-utilization", lambda: run_utilization(scale=TINY, chunk_size=CHUNK)),
    ("ext-shared-inputs", lambda: run_shared_inputs(scale=TINY, instances=3, chunk_size=CHUNK)),
    ("ext-failures", lambda: run_failures(scale=TINY, instances=3, chunk_size=CHUNK)),
    ("ext-resilience", lambda: run_resilience(scale=TINY, instances=3, chunk_size=CHUNK)),
    (
        "ext-open-system",
        lambda: run_open_system(scale=TINY, rates=(0.05, 0.2), stream_length=4, chunk_size=CHUNK),
    ),
    (
        "ext-colocation",
        lambda: run_colocation(scale=TINY, total_instances=8, n_nodes=2, chunk_size=CHUNK),
    ),
    ("ext-predictor", lambda: run_predictor_learning(scale=TINY, runs=2, chunk_size=CHUNK)),
    ("ext-decomposition", lambda: run_decomposition(scale=TINY, dm_instances=2, chunk_size=CHUNK)),
    ("ext-validation", lambda: run_validation(chunk_size=CHUNK)),
    ("ext-ablations", lambda: run_ablations(scale=TINY, chunk_size=CHUNK)),
    ("cold-pages", lambda: run_cold_pages(scale=TINY, chunk_size=CHUNK)),
]


class TestHarnessRoundTrips:
    @pytest.mark.parametrize("fn", [fn for _, fn in HARNESSES], ids=[n for n, _ in HARNESSES])
    def test_figure_result_roundtrips_byte_identical(self, fn):
        live = fn()
        cached = roundtrip(live)
        assert isinstance(cached, FigureResult)
        assert cached == live
        assert cached.to_csv() == live.to_csv()
        assert cached.to_table() == live.to_table()
        for name, vals in cached.series.items():
            assert [type(v) for v in vals] == [type(v) for v in live.series[name]]


class TestCachedRunEqualsLive:
    @pytest.mark.parametrize(
        "fn",
        [run_fig05, run_fig09, run_utilization],
        ids=["fig05", "fig09", "ext-utilization"],
    )
    def test_cached_to_csv_byte_identical_to_live(self, fn, tmp_path):
        kwargs = (
            {"scale": TINY, "chunk_size": CHUNK}
            if fn is run_utilization
            else {"scale": TINY, "instances_per_class": MIX1, "chunk_size": CHUNK}
        )
        live = fn(**kwargs)
        cache = ResultCache(tmp_path)
        cold = fn(cache=cache, **kwargs)
        assert cache.stats.writes > 0
        warm_cache = ResultCache(tmp_path)
        warm = fn(cache=warm_cache, **kwargs)
        assert warm_cache.stats.hits > 0 and warm_cache.stats.misses == 0
        assert cold.to_csv() == live.to_csv()
        assert warm.to_csv() == live.to_csv()
        assert warm.to_table() == live.to_table()

    def test_store_roundtrip_of_full_result(self, tmp_path):
        live = run_validation(chunk_size=CHUNK)
        cache = ResultCache(tmp_path)
        key = cell_keys(run_validation, {"chunk_size": CHUNK}, seed=0)
        assert cache.put(key, live)
        hit, cached = cache.get(key)
        assert hit
        assert cached.to_csv() == live.to_csv()
