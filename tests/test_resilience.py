"""Resilience layer: retry policy, crash-safe journal, supervised map,
invariant checker, and the fault edge cases the checker guards.

The supervised-map tests exercise real fork pools with really raising,
hanging, and dying workers; timings are kept tiny (millisecond backoffs,
sub-second deadlines) so the whole file stays fast.
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

import repro
from repro.parallel import supports_fork
from repro.resilience import (
    NULL_CHECKER,
    CellFailure,
    InvariantChecker,
    InvariantViolation,
    RetryPolicy,
    RunJournal,
    SweepFailure,
    failure_table,
    invariants,
    journal_path,
    supervised_map,
)
from repro.util.errors import ConfigurationError

from conftest import CHUNK, make_pageset, simple_task, small_specs

needs_fork = pytest.mark.skipif(not supports_fork(), reason="no fork on this platform")

#: fast schedule for tests: millisecond backoffs instead of the defaults
FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.005, max_delay=0.01)
ONE_SHOT = RetryPolicy(max_attempts=1)


# --------------------------------------------------------------------------- #
# cell functions (module-level: shared by fork workers and the fallback loop)
# --------------------------------------------------------------------------- #
def _square(x):
    return x * x


def _stagger(x):
    # later cells finish *earlier*: completion order is reversed
    time.sleep(0.05 * (3 - x) if x < 3 else 0)
    return x


def _raise_on_three(x):
    if x == 3:
        raise ValueError("boom three")
    return x + 10


def _hang_on_two(x):
    if x == 2:
        time.sleep(60)
    return x


def _die_on_two(x):
    if x == 2:
        os._exit(13)
    return x


def _flaky(arg):
    """Fails on the first attempt (marker file absent), succeeds after."""
    path, x = arg
    if not os.path.exists(path):
        open(path, "w").close()
        raise RuntimeError("transient failure")
    return x


# --------------------------------------------------------------------------- #
# retry policy
# --------------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        p = RetryPolicy()
        assert p.delay("fig03", 1) == p.delay("fig03", 1)
        assert p.delay("fig03", 1) != p.delay("fig04", 1)  # per-cell jitter
        assert p.delay("fig03", 1) != p.delay("fig03", 2)

    def test_delay_grows_and_caps(self):
        p = RetryPolicy(base_delay=0.1, growth=2.0, max_delay=0.5, jitter=0.0)
        assert [p.delay("k", a) for a in (1, 2, 3, 4)] == [0.1, 0.2, 0.4, 0.5]

    def test_jitter_bounds(self):
        p = RetryPolicy(base_delay=1.0, growth=1.0, max_delay=1.0, jitter=0.5)
        for key in ("a", "b", "c", "d"):
            assert 0.5 <= p.delay(key, 1) <= 1.5

    def test_exhausted(self):
        p = RetryPolicy(max_attempts=3)
        assert not p.exhausted(2)
        assert p.exhausted(3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)


# --------------------------------------------------------------------------- #
# journal
# --------------------------------------------------------------------------- #
class TestRunJournal:
    def test_roundtrip(self, tmp_path):
        path = journal_path(tmp_path)
        with RunJournal(path) as j:
            j.run_started("demo", ["a", "b", "c"])
            j.cell_started("a")
            j.cell_committed("a")
            j.cell_failed("b", "error", 1, "boom")
            j.cell_quarantined("b", "error", 2, "boom")
            j.run_completed(failures=1)
        state = RunJournal.load_state(path)
        assert state.committed == {"a"}
        assert state.quarantined == {"b"}
        assert state.completed and not state.interrupted
        assert state.runs == 1
        assert state.is_committed("a") and not state.is_committed("c")

    def test_missing_file_is_empty_state(self, tmp_path):
        state = RunJournal.load_state(tmp_path / "nope.jsonl")
        assert state.committed == set() and state.runs == 0

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as j:
            j.run_started("demo", ["a"])
            j.cell_committed("a")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"t": 1.0, "ev": "cell-comm')  # the SIGKILL'd write
        state = RunJournal.load_state(path)
        assert state.committed == {"a"}
        assert len(state.records) == 2

    def test_commit_clears_earlier_quarantine(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as j:
            j.cell_quarantined("a", "error", 2)
            j.cell_committed("a")  # a later run succeeded
        state = RunJournal.load_state(path)
        assert state.committed == {"a"}
        assert state.quarantined == set()

    def test_interruption_is_visible(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as j:
            j.run_started("demo", ["a"])
            j.run_interrupted("SIGTERM", ["a"])
        assert RunJournal.load_state(path).interrupted

    def test_every_line_is_complete_json(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as j:
            j.run_started("demo", ["a"])
            j.cell_committed("a", cached=True)
        for line in path.read_text().splitlines():
            entry = json.loads(line)
            assert "t" in entry and "ev" in entry


# --------------------------------------------------------------------------- #
# supervised map — happy path and the three failure modes
# --------------------------------------------------------------------------- #
class TestSupervisedMap:
    @needs_fork
    def test_ordered_results_across_pool(self):
        sup = supervised_map(_stagger, [0, 1, 2, 3, 4, 5], jobs=3)
        assert sup.ok
        assert sup.results == [0, 1, 2, 3, 4, 5]

    @needs_fork
    def test_raising_cell_quarantined_others_survive(self):
        sup = supervised_map(
            _raise_on_three, [1, 2, 3, 4],
            keys=["c1", "c2", "c3", "c4"], jobs=2, retry=FAST_RETRY,
        )
        assert not sup.ok
        assert sup.results == [11, 12, None, 14]
        (failure,) = sup.failures
        assert failure.key == "c3"
        assert failure.kind == "error"
        assert failure.attempts == FAST_RETRY.max_attempts
        assert "boom three" in failure.error

    @needs_fork
    def test_hung_cell_times_out(self):
        t0 = time.monotonic()
        sup = supervised_map(
            _hang_on_two, [1, 2, 3],
            keys=["c1", "c2", "c3"], jobs=2, deadline=0.5, retry=ONE_SHOT,
        )
        assert time.monotonic() - t0 < 30  # never waits out the hang
        assert sup.results == [1, None, 3]
        (failure,) = sup.failures
        assert failure.key == "c2" and failure.kind == "timeout"

    @needs_fork
    def test_dead_worker_detected_and_pool_replenished(self):
        sup = supervised_map(
            _die_on_two, [1, 2, 3, 4, 5],
            keys=[f"c{i}" for i in (1, 2, 3, 4, 5)], jobs=2, retry=ONE_SHOT,
        )
        assert sup.results == [1, None, 3, 4, 5]  # the pool kept going
        (failure,) = sup.failures
        assert failure.key == "c2" and failure.kind == "crash"
        assert "exit code 13" in failure.error

    @needs_fork
    def test_transient_failure_retried_to_success(self, tmp_path):
        marker = tmp_path / "attempted"
        sup = supervised_map(
            _flaky, [(str(marker), 7)], keys=["c"], jobs=2, retry=FAST_RETRY,
        )
        assert sup.ok and sup.results == [7]

    def test_in_process_fallback_retries_and_quarantines(self, tmp_path):
        marker = tmp_path / "attempted"
        sup = supervised_map(
            _flaky, [(str(marker), 7)], keys=["ok"], jobs=None, retry=FAST_RETRY,
        )
        assert sup.ok and sup.results == [7]
        sup = supervised_map(
            _raise_on_three, [3], keys=["bad"], jobs=None, retry=FAST_RETRY,
        )
        assert sup.results == [None]
        assert sup.failures[0].kind == "error"

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            supervised_map(_square, [1, 2], keys=["same", "same"])

    def test_empty_items(self):
        sup = supervised_map(_square, [])
        assert sup.ok and sup.results == []


class _DictCache:
    """Minimal cache double honouring the ResultCache get/put protocol."""

    def __init__(self):
        self.data = {}
        self.puts = []

    def get(self, key):
        if key in self.data:
            return True, self.data[key]
        return False, None

    def put(self, key, value):
        self.data[key] = value
        self.puts.append(key)
        return True


class TestSupervisedMapJournalAndCache:
    def test_cache_hits_skip_dispatch(self, tmp_path):
        cache = _DictCache()
        cache.data["k2"] = 999  # pre-committed cell
        jpath = tmp_path / "journal.jsonl"
        with RunJournal(jpath) as journal:
            sup = supervised_map(
                _square, [1, 2, 3], keys=["c1", "c2", "c3"], jobs=None,
                journal=journal, cache=cache, cache_key=lambda x: f"k{x}",
            )
        assert sup.ok
        assert sup.results == [1, 999, 9]  # the hit was served, not computed
        assert sorted(cache.puts) == ["k1", "k3"]
        records = RunJournal.load_state(jpath).records
        cached = [r["cell"] for r in records if r["ev"] == "cell-committed" and r["cached"]]
        live = [r["cell"] for r in records if r["ev"] == "cell-committed" and not r["cached"]]
        assert cached == ["c2"]
        assert sorted(live) == ["c1", "c3"]

    @needs_fork
    def test_journal_records_full_lifecycle(self, tmp_path):
        jpath = tmp_path / "journal.jsonl"
        with RunJournal(jpath) as journal:
            journal.run_started("demo", ["c1", "c3"])
            sup = supervised_map(
                _raise_on_three, [1, 3], keys=["c1", "c3"], jobs=2,
                retry=FAST_RETRY, journal=journal,
            )
            journal.run_completed(failures=len(sup.failures))
        state = RunJournal.load_state(jpath)
        assert state.committed == {"c1"}
        assert state.quarantined == {"c3"}
        assert state.completed
        events = [r["ev"] for r in state.records]
        assert events.count("cell-failed") == FAST_RETRY.max_attempts
        assert events[0] == "run-started" and events[-1] == "run-completed"


# --------------------------------------------------------------------------- #
# failure records and the sweep() integration
# --------------------------------------------------------------------------- #
class TestFailureReporting:
    def test_describe_and_table(self):
        failures = [
            CellFailure(key="fig03", kind="timeout", attempts=3, error="too slow"),
            CellFailure(key="fig07", kind="crash", attempts=1),
        ]
        assert "fig03: timeout after 3 attempt(s) — too slow" == failures[0].describe()
        table = failure_table(failures)
        assert "fig03" in table and "fig07" in table and "quarantined" in table

    def test_sweep_failure_carries_results(self):
        exc = SweepFailure(
            [CellFailure(key="bad", kind="error", attempts=2)],
            results={"good": 1.0},
        )
        assert "bad" in str(exc)
        assert exc.results == {"good": 1.0}

    def test_sweep_with_retry_raises_sweep_failure(self):
        from repro.experiments.common import SweepSpec, sweep

        spec = SweepSpec("mixed", base_seed=3)
        spec.add("ok", _square, x=4)
        spec.add("bad", _raise_on_three, x=3)
        with pytest.raises(SweepFailure) as info:
            sweep(spec, retry=FAST_RETRY)
        assert info.value.results == {"ok": 16}
        assert [f.key for f in info.value.failures] == ["bad"]

    def test_sweep_without_knobs_still_raises_plainly(self):
        # the default path is unsupervised: first error propagates as-is
        from repro.experiments.common import SweepSpec, sweep

        spec = SweepSpec("plain", base_seed=3)
        spec.add("bad", _raise_on_three, x=3)
        with pytest.raises(ValueError, match="boom three"):
            sweep(spec)


# --------------------------------------------------------------------------- #
# invariant checker
# --------------------------------------------------------------------------- #
class TestInvariantChecker:
    def test_null_checker_is_free_and_inert(self):
        assert not NULL_CHECKER.enabled
        NULL_CHECKER.conservation("n0", 1, 999, op="nonsense")  # no-op
        assert invariants.active() is NULL_CHECKER
        assert not invariants.enabled()

    def test_session_installs_and_restores(self):
        checker = InvariantChecker()
        with invariants.session(checker) as active:
            assert active is checker
            assert invariants.active() is checker
            assert invariants.enabled()
        assert invariants.active() is NULL_CHECKER

    def test_conservation_violation_raises(self):
        checker = InvariantChecker()
        checker.conservation("n0", 100, 100, op="migrate")  # fine
        with pytest.raises(InvariantViolation, match="not conserved"):
            checker.conservation("n0", 100, 164, op="migrate")

    def test_non_strict_collects_instead(self):
        checker = InvariantChecker(strict=False)
        checker.conservation("n0", 100, 164, op="migrate")
        checker.conservation("n0", 100, 100, op="migrate", delta=64)
        assert len(checker.violations) == 2
        assert checker.checks == 2

    def test_engine_drift_detected(self, engine):
        engine.schedule(1.0, lambda: None)
        checker = InvariantChecker()
        checker.engine(engine)  # consistent
        engine._live += 1  # seeded accounting bug
        with pytest.raises(InvariantViolation, match="event-heap drift"):
            checker.engine(engine)

    def test_metrics_inconsistency_detected(self):
        from repro.metrics.collector import TaskMetrics

        class _Reg:
            def tasks(self):
                return [TaskMetrics(owner="t0", failed=True, finished_at=None)]

        with pytest.raises(InvariantViolation, match="no finish time"):
            InvariantChecker().metrics(_Reg())

    def test_memory_accounting_bug_detected(self, node):
        from repro.memory.tiers import PMEM

        ps = make_pageset(node, "a", CHUNK * 4)
        node.place(ps, np.arange(ps.n_chunks), PMEM)
        checker = InvariantChecker()
        checker.memory(node)  # consistent
        node._used[int(PMEM)] += CHUNK  # seeded leak: bytes with no pages
        with pytest.raises(InvariantViolation, match="memory accounting"):
            checker.memory(node)

    def test_checked_migration_is_conserving(self, node):
        from repro.memory.tiers import CXL, PMEM

        ps = make_pageset(node, "a", CHUNK * 4)
        with invariants.session(InvariantChecker()):
            node.place(ps, np.arange(ps.n_chunks), PMEM)
            node.migrate(ps, np.arange(2), CXL)
            evacuated, stranded = node.offline_tier(PMEM)
        assert evacuated == CHUNK * 2 and stranded == {}
        node.validate()

    def test_offline_tier_catches_seeded_leak(self, node):
        from repro.memory.tiers import CXL, PMEM

        ps = make_pageset(node, "a", CHUNK * 4)
        node.place(ps, np.arange(ps.n_chunks), PMEM)
        node._used[int(CXL)] += CHUNK  # seeded leak, invisible until checked
        with invariants.session(InvariantChecker()):
            with pytest.raises(InvariantViolation):
                node.offline_tier(PMEM)


# --------------------------------------------------------------------------- #
# fault edge cases under the checker (regression tests for the injector)
# --------------------------------------------------------------------------- #
class TestFaultEdgeCases:
    def test_tier_offline_same_tick_as_node_crash(self, engine, metrics):
        from test_faults import make_cluster, task_with_image

        from repro.faults import FaultInjector, FaultKind, FaultSchedule, FaultSpec
        from repro.memory.tiers import PMEM
        from repro.scheduler.job import JobState

        scheduler, agents, containers = make_cluster(engine, metrics, n_nodes=2)
        job = scheduler.submit(task_with_image("t0", base_time=30.0))
        # both faults land on the same node in the same injector tick: the
        # crash runs first, then the tier fault hits an already-down node
        schedule = FaultSchedule([
            FaultSpec(FaultKind.NODE_CRASH, time=3.0, node=0, duration=5.0),
            FaultSpec(FaultKind.TIER_OFFLINE, time=3.0, node=0, tier=PMEM,
                      duration=5.0),
        ])
        injector = FaultInjector(engine, agents, scheduler, containers,
                                 metrics, schedule)
        injector.start()
        with invariants.session(InvariantChecker()) as checker:
            scheduler.run_to_completion(max_time=1e5)
        assert checker.violations == []
        assert checker.checks > 0
        assert job.state is JobState.DONE
        for agent in agents:
            agent.memory.validate()

    def test_oom_during_tier_evacuation(self, engine, metrics):
        from test_faults import make_agent, oom_prone_task

        from repro.memory.tiers import CXL, DRAM, PMEM, SWAP
        from repro.policies.linux import LinuxSwapPolicy

        agent = make_agent(engine, metrics, policy=LinuxSwapPolicy())
        agent.start_task(oom_prone_task("t0"))
        with invariants.session(InvariantChecker()) as checker:
            engine.run(until=1.0)
            # yank DRAM out from under the capped task mid-run: its pages
            # evacuate, then the dynamic growth trips the cgroup
            agent.handle_tier_offline(DRAM)
            engine.run(until=1e4)
        assert checker.violations == [] and checker.checks > 0
        tm = metrics.get("t0")
        assert tm.failed  # the cap held even with DRAM gone
        agent.memory.validate()
        assert agent.memory.rss(DRAM) == 0


# --------------------------------------------------------------------------- #
# SIGKILL + resume (end-to-end, out of process)
# --------------------------------------------------------------------------- #
_KILL_SCRIPT = """\
import os, sys, time

from repro.cache.keys import cell_keys
from repro.cache.store import ResultCache
from repro.resilience import RetryPolicy, RunJournal, journal_path, supervised_map

ROOT = sys.argv[1]
FAST = os.path.join(ROOT, "fast")  # present on the resume run


def cell(x):
    if x != 1 and not os.path.exists(FAST):
        time.sleep(300)  # "mid-flight" when the parent is SIGKILL'd
    print(f"executed {x}", flush=True)
    return x * x


cache = ResultCache(os.path.join(ROOT, "cache"))
jpath = journal_path(cache.root)
items = [1, 2, 3]
keys = [f"c{x}" for x in items]
with RunJournal(jpath) as journal:
    journal.run_started("kill-test", keys)
    sup = supervised_map(
        cell, items, keys=keys, jobs=2,
        retry=RetryPolicy(max_attempts=1),
        journal=journal, cache=cache,
        cache_key=lambda x: cell_keys(cell, {"x": x}, seed=x),
    )
    journal.run_completed(failures=len(sup.failures))
print("results", sup.results, flush=True)
"""


@needs_fork
def test_sigkill_then_resume_executes_only_uncommitted(tmp_path):
    script = tmp_path / "kill_script.py"
    script.write_text(_KILL_SCRIPT)
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    jpath = tmp_path / "cache" / "journal.jsonl"

    proc = subprocess.Popen(
        [sys.executable, str(script), str(tmp_path)],
        env=env, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if jpath.exists() and "c1" in RunJournal.load_state(jpath).committed:
                break
            time.sleep(0.02)
        else:
            pytest.fail("first cell never committed")
    finally:
        # kill the whole group: the supervisor AND its sleeping workers
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)

    state = RunJournal.load_state(jpath)
    assert state.committed == {"c1"}
    assert not state.completed  # the kill really interrupted the run

    (tmp_path / "fast").write_text("")  # let the remaining cells run quickly
    done = subprocess.run(
        [sys.executable, str(script), str(tmp_path)],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert done.returncode == 0, done.stderr
    executed = sorted(
        int(line.split()[1]) for line in done.stdout.splitlines()
        if line.startswith("executed ")
    )
    assert executed == [2, 3]  # c1 came back from the cache, byte-identical
    assert "results [1, 4, 9]" in done.stdout
    state = RunJournal.load_state(jpath)
    assert state.committed == {"c1", "c2", "c3"}
    assert state.completed
