"""Tests for the paper's four evaluation workloads."""

import pytest

from repro.core.flags import MemFlag
from repro.util.units import GiB
from repro.workflows.library import (
    PAPER_MIX_FIG10,
    data_compression_task,
    data_mining_task,
    deep_learning_task,
    paper_workload_suite,
    scientific_task,
)
from repro.workflows.task import WorkloadClass


class TestDeepLearning:
    def test_five_epochs_plus_load(self):
        spec = deep_learning_task()
        assert len(spec.phases) == 6
        assert spec.phases[0].name == "load-dataset"

    def test_paper_footprint(self):
        assert deep_learning_task().footprint == GiB(40)

    def test_bandwidth_heavy(self):
        spec = deep_learning_task()
        epoch = spec.phases[1]
        assert epoch.bw_frac > epoch.lat_frac

    def test_flags(self):
        assert deep_learning_task().flags == MemFlag.BW | MemFlag.CAP

    def test_early_phases_touch_minority(self):
        """§II-C: most of the allocation idles early in training."""
        spec = deep_learning_task()
        assert spec.phases[0].touched_fraction <= 0.45
        assert spec.phases[1].touched_fraction <= 0.45

    def test_scale(self):
        spec = deep_learning_task(scale=0.25)
        assert spec.footprint == GiB(10)

    def test_custom_epochs(self):
        assert len(deep_learning_task(epochs=2).phases) == 3


class TestDataMining:
    def test_short_lived(self):
        assert data_mining_task().ideal_duration <= 20.0

    def test_latency_sensitive(self):
        etl = data_mining_task().phases[1]
        assert etl.lat_frac >= 0.5

    def test_flags(self):
        assert data_mining_task().flags == MemFlag.LAT | MemFlag.SHL


class TestDataCompression:
    def test_streaming_passes_cover_footprint(self):
        spec = data_compression_task(passes=4)
        assert len(spec.phases) == 4
        assert spec.phases[0].touched_fraction == pytest.approx(0.25)

    def test_paper_50gb_input(self):
        assert data_compression_task().footprint == GiB(50)

    def test_compute_heavy(self):
        p = data_compression_task().phases[0]
        assert p.compute_frac >= 0.5


class TestScientific:
    def test_capacity_flag(self):
        assert scientific_task().flags == MemFlag.CAP

    def test_biggest_footprint(self):
        assert scientific_task().footprint == GiB(64)

    def test_dynamic_expansion_variant(self):
        spec = scientific_task(request_extra=True)
        bfs = spec.phases[1]
        assert bfs.allocate is not None
        assert bfs.allocate.flags is MemFlag.CAP
        assert spec.max_footprint > spec.footprint

    def test_no_dynamic_by_default(self):
        assert scientific_task().phases[1].allocate is None


class TestSuite:
    def test_all_four_classes(self):
        suite = paper_workload_suite(0.1)
        assert set(suite) == {
            WorkloadClass.DL,
            WorkloadClass.DM,
            WorkloadClass.DC,
            WorkloadClass.SC,
        }

    def test_scale_applied_to_all(self):
        suite = paper_workload_suite(0.5)
        assert suite[WorkloadClass.DL].footprint == GiB(20)

    def test_fig10_mix_totals_2000(self):
        assert sum(PAPER_MIX_FIG10.values()) == 2000
        assert PAPER_MIX_FIG10[WorkloadClass.DM] == 1100
