"""Deterministic RNG-stream tests."""

import numpy as np

from repro.util.rng import RngFactory, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_name_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_range(self):
        s = derive_seed(2**62, "long-name" * 10)
        assert 0 <= s < 2**63


class TestRngFactory:
    def test_same_name_same_generator_instance(self):
        f = RngFactory(0)
        assert f.stream("x") is f.stream("x")

    def test_different_names_different_draws(self):
        f = RngFactory(0)
        a = f.stream("a").random(8)
        b = f.stream("b").random(8)
        assert not np.allclose(a, b)

    def test_reproducible_across_factories(self):
        a = RngFactory(7).stream("wl.0").random(16)
        b = RngFactory(7).stream("wl.0").random(16)
        assert np.allclose(a, b)

    def test_request_order_does_not_matter(self):
        f1 = RngFactory(5)
        f1.stream("first")
        x1 = f1.stream("second").random(4)
        f2 = RngFactory(5)
        x2 = f2.stream("second").random(4)
        assert np.allclose(x1, x2)

    def test_fresh_restarts_stream(self):
        f = RngFactory(3)
        a = f.stream("s").random(4)
        b = f.fresh("s").random(4)
        assert np.allclose(a, b)

    def test_spawn_yields_n_streams(self):
        f = RngFactory(0)
        streams = list(f.spawn("worker", 5))
        assert len(streams) == 5
        assert len({id(s) for s in streams}) == 5
