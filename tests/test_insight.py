"""The memory-introspection plane: ledger mechanics, tier sampler,
cause scopes, the null path, record round-trips, the live-metrics
surface, and the cross-backend equivalence contract.

The plane's placement hooks live on the hot movement paths of all three
backends, so the load-bearing assertions here are the equivalence ones:
the ledger must be *bit-identical* between the exact backends
(object vs arena) and must reconcile exactly with
:class:`~repro.memory.system.MemoryTrafficStats` under arena-fast —
if either drifts, an emission point was added to one path but not the
other.
"""

import json
import os

import numpy as np
import pytest

from repro.core.arena import BACKEND_ARENA, BACKEND_ARENA_FAST, BACKEND_OBJECT
from repro.memory.tiers import NUM_TIERS, TIER_NAMES, TierKind
from repro.obs import insight as _insight
from repro.obs.insight import (
    ANY_TIER,
    TIER_LABELS,
    Insight,
    InsightRecord,
    LiveMetricsWriter,
    MigrationLedger,
    SignalView,
    TierSampler,
    format_live_window,
    live_window_payload,
    movement_kind,
    tier_label,
)


# --------------------------------------------------------------------------- #
# tier vocabulary (mirrored, not imported — pin the sync)
# --------------------------------------------------------------------------- #

class TestVocabulary:
    def test_tier_labels_track_memory_tiers(self):
        """insight.py cannot import repro.memory (cycle), so it mirrors
        the tier names; this is the tripwire if the vocabulary drifts."""
        assert TIER_LABELS == tuple(
            TIER_NAMES[TierKind(i)] for i in range(NUM_TIERS)
        )
        assert _insight.NUM_TIERS == NUM_TIERS

    def test_movement_kind_classification(self):
        assert movement_kind(2, 0) == "promote"
        assert movement_kind(1, 2) == "demote"
        assert movement_kind(0, 3) == "swap-out"
        assert movement_kind(3, 0) == "swap-in"

    def test_tier_label_handles_sentinels(self):
        assert tier_label(0) == TIER_LABELS[0]
        assert tier_label(ANY_TIER) == "*"
        assert tier_label(99) == "*"


# --------------------------------------------------------------------------- #
# ledger
# --------------------------------------------------------------------------- #

class TestMigrationLedger:
    def test_record_and_rollups(self):
        led = MigrationLedger()
        led.record(1.0, "n0", "promote", "reactive", "t1", 2, 0, 4, 4096)
        led.record(2.0, "n0", "promote", "reactive", "t1", 1, 0, 2, 2048)
        led.record(3.0, "n1", "demote", "proactive", "t2", 0, 2, 1, 1024)
        assert led.counts_by_kind() == {"promote": 2, "demote": 1}
        assert led.bytes_by_kind() == {"promote": 6144, "demote": 1024}
        assert led.chunks_by_kind() == {"promote": 6, "demote": 1}

    def test_bounded_entries_with_dropproof_totals(self):
        led = MigrationLedger(max_entries=3)
        for i in range(10):
            led.record(float(i), "n0", "promote", "direct", "t", 2, 0, 1, 100)
        assert len(led.entries) == 3
        assert led.dropped == 7
        # totals never drop: they count all ten records
        assert led.counts_by_kind() == {"promote": 10}
        assert led.bytes_by_kind() == {"promote": 1000}

    def test_migrated_matrix_covers_movement_kinds_only(self):
        led = MigrationLedger()
        led.record(1.0, "n0", "promote", "direct", "t", 2, 0, 1, 100)
        led.record(2.0, "n0", "swap-out", "direct", "t", 0, 3, 1, 50)
        led.record(3.0, "n0", "shadow", "direct", "t", ANY_TIER, 0, 1, 999)
        led.record(4.0, "n0", "reclaim", "reclaim", "*", 0, ANY_TIER, 1, 999)
        mat = led.migrated_matrix()
        assert mat.shape == (NUM_TIERS, NUM_TIERS)
        assert mat[2, 0] == 100 and mat[0, 3] == 50
        assert mat.sum() == 150  # shadows/reclaims are not movements


# --------------------------------------------------------------------------- #
# cause scopes
# --------------------------------------------------------------------------- #

class TestCauseScopes:
    def test_default_and_nesting(self):
        ins = Insight()
        assert ins.current_cause() == "direct"
        with ins.cause("reactive"):
            assert ins.current_cause() == "reactive"
            with ins.cause("ensure-room"):
                assert ins.current_cause() == "ensure-room"
            assert ins.current_cause() == "reactive"
        assert ins.current_cause() == "direct"

    def test_fallback_yields_to_active_scope(self):
        ins = Insight()
        with ins.fallback_cause("replace"):
            assert ins.current_cause() == "replace"
        with ins.cause("reactive"), ins.fallback_cause("replace"):
            assert ins.current_cause() == "reactive"

    def test_migration_takes_cause_from_scope(self):
        ins = Insight()
        with ins.cause("proactive"):
            ins.migration(1.0, "n0", "t", 0, 2, 1, 100)
        ins.migration(2.0, "n0", "t", 2, 0, 1, 100)
        causes = [e[3] for e in ins.ledger.entries]
        assert causes == ["proactive", "direct"]


# --------------------------------------------------------------------------- #
# null path
# --------------------------------------------------------------------------- #

class TestNullPath:
    def test_disabled_by_default(self):
        assert not _insight.enabled()
        assert _insight.active() is _insight.NULL
        assert _insight.worker_insight() is None

    def test_null_operations_are_noops(self):
        null = _insight.NULL
        null.migration(1.0, "n0", "t", 0, 2, 1, 100)
        null.ledger_event(1.0, "n0", "shadow", "t", ANY_TIER, 0, 1, 100)
        null.sample(1.0, "n0", np.zeros(NUM_TIERS), np.zeros(NUM_TIERS), 0.0, [0, 0, 0])
        with null.cause("x"), null.fallback_cause("y"):
            assert null.current_cause() == "direct"
        assert null.snapshot() is None
        assert not null.view().enabled

    def test_module_scopes_work_while_disabled(self):
        with _insight.cause("reactive"), _insight.fallback_cause("replace"):
            assert _insight.active().current_cause() == "direct"

    def test_session_restores_previous_context(self):
        ins = Insight("outer")
        with _insight.session(ins):
            assert _insight.active() is ins
            with _insight.session(Insight("inner")):
                assert _insight.active().run_id == "inner"
            assert _insight.active() is ins
        assert _insight.active() is _insight.NULL


# --------------------------------------------------------------------------- #
# tier sampler
# --------------------------------------------------------------------------- #

def _push_n(sampler, node, n, t0=0.0):
    for i in range(n):
        occ = np.full(NUM_TIERS, i, dtype=np.int64)
        free = np.full(NUM_TIERS, 100 - i, dtype=np.int64)
        sampler.push(t0 + float(i), node, occ, free, float(i) / 100.0, [0.1, 0.5, 0.9])


class TestTierSampler:
    def test_under_capacity_keeps_everything(self):
        s = TierSampler(capacity=64)
        _push_n(s, "n0", 10)
        series = s.nodes["n0"].trimmed()
        assert series["t"].shape == (10,)
        assert series["occupancy"].shape == (10, NUM_TIERS)
        assert series["free"].shape == (10, NUM_TIERS)
        assert series["stall"].shape == (10,)
        assert series["temp_q"].shape == (10, len(_insight.TEMP_QUANTILES))

    def test_downsampling_halves_and_doubles_stride(self):
        s = TierSampler(capacity=8)
        _push_n(s, "n0", 40)
        node = s.nodes["n0"]
        assert node.count <= 8
        assert node.stride > 1
        series = node.trimmed()
        # surviving rows are every stride-th offered sample, still ordered
        ts = series["t"]
        assert np.all(np.diff(ts) > 0)
        assert np.allclose(np.diff(ts), node.stride)

    def test_nodes_are_independent(self):
        s = TierSampler(capacity=16)
        _push_n(s, "n0", 4)
        _push_n(s, "n1", 6)
        assert s.nodes["n0"].trimmed()["t"].shape == (4,)
        assert s.nodes["n1"].trimmed()["t"].shape == (6,)


# --------------------------------------------------------------------------- #
# record round-trip and merge
# --------------------------------------------------------------------------- #

def _small_insight(run_id="r", nodes=("n0",), entries=3):
    ins = Insight(run_id)
    for node in nodes:
        for i in range(entries):
            with ins.cause("reactive"):
                ins.migration(float(i), node, f"t{i}", 0, 2, 1, 100)
        _push_n(ins.sampler, node, 5)
    return ins


class TestRecordRoundTrip:
    def test_dict_round_trip_identity(self):
        rec = _small_insight().snapshot()
        clone = InsightRecord.from_dict(rec.to_dict())
        assert clone == rec
        # and the dict itself is JSON-safe
        json.dumps(rec.to_dict())

    def test_merge_sums_totals_and_replays_samples(self):
        a = _small_insight("a", nodes=("n0",))
        b = _small_insight("b", nodes=("n1",))
        a.merge(b.snapshot(), worker="w1")
        assert a.ledger.counts_by_kind() == {"demote": 6}
        assert sorted(a.sampler.nodes) == ["n0", "n1"]
        assert a.workers == ["w1"]

    def test_merge_respects_entry_bound(self):
        a = Insight("a", max_ledger_entries=4)
        b = _small_insight("b", entries=10)
        a.merge(b.snapshot())
        assert len(a.ledger.entries) == 4
        assert a.ledger.counts_by_kind()["demote"] == 10  # totals intact


# --------------------------------------------------------------------------- #
# signal view
# --------------------------------------------------------------------------- #

class TestSignalView:
    def test_disabled_view(self):
        view = SignalView(None)
        assert not view.enabled
        assert view.nodes() == []
        assert view.latest("n0") is None

    def test_latest_and_fractions(self):
        ins = _small_insight(nodes=("n1", "n0"))
        view = ins.view()
        assert view.enabled
        assert view.nodes() == ["n0", "n1"]
        latest = view.latest("n0")
        assert latest is not None and latest["t"] == 4.0
        assert latest["occupancy"].shape == (NUM_TIERS,)
        frac = view.occupancy_fraction("n0")
        assert np.all((0.0 <= frac) & (frac <= 1.0))
        assert view.ledger_counts() == {"demote": 6}


# --------------------------------------------------------------------------- #
# live metrics surface
# --------------------------------------------------------------------------- #

class TestLiveMetrics:
    def test_writer_streams_and_snapshots(self, tmp_path):
        w = LiveMetricsWriter(str(tmp_path))
        ins = _small_insight()
        for i in range(3):
            w.write_window(live_window_payload(
                i, i * 10.0, (i + 1) * 10.0,
                offered=5, admitted=4, rejected=1, queue=2, running=3,
                view=ins.view(),
            ))
        lines = (tmp_path / _insight.LIVE_FILE).read_text().splitlines()
        assert len(lines) == 3 and w.windows_written == 3
        payload = json.loads(lines[-1])
        assert payload["window"] == 2
        assert set(_insight.LIVE_SCHEMA) <= set(payload)
        assert "n0" in payload["tiers"]
        assert payload["ledger"]["demote"] == 300
        prom = (tmp_path / _insight.PROM_FILE).read_text()
        assert "repro_service_window 2" in prom
        assert 'repro_tier_occupancy_bytes{node="n0",tier="dram"}' in prom
        assert 'repro_ledger_bytes{kind="demote"} 300' in prom

    def test_fresh_writer_truncates(self, tmp_path):
        w1 = LiveMetricsWriter(str(tmp_path))
        w1.write_window({"window": 0, "start": 0.0, "end": 1.0, "offered": 0,
                         "admitted": 0, "rejected": 0, "queue": 0, "running": 0})
        LiveMetricsWriter(str(tmp_path))
        assert (tmp_path / _insight.LIVE_FILE).read_text() == ""

    def test_format_live_window_renders_tiers(self):
        ins = _small_insight()
        payload = live_window_payload(
            7, 0.0, 10.0, offered=1, admitted=1, rejected=0, queue=0,
            running=1, view=ins.view(),
        )
        text = format_live_window(payload)
        assert "offered=1" in text and "n0" in text and "stall=" in text
        for label in TIER_LABELS:
            assert label in text


# --------------------------------------------------------------------------- #
# cross-backend equivalence (the contract that keeps the hooks honest)
# --------------------------------------------------------------------------- #

#: registry families with distinct movement mixes: resilience (evacuate +
#: shadow + both directions), the full-policy ablation (shadow-drop), and
#: colocation (promotion-only)
EQUIV_SCENARIOS = [
    "ext-resilience/IMME",
    "ablations/full-imme",
    "ext-colocation/bare-metal",
]


def _scenario_ledger(name, backend):
    """Run one registry scenario under ``backend`` with the plane active."""
    from repro.scenarios.build import run_scenario
    from repro.scenarios.registry import scenario

    saved = os.environ.get("REPRO_CORE")
    os.environ["REPRO_CORE"] = backend
    try:
        ins = Insight(f"equiv-{backend}")
        with _insight.session(ins):
            run_scenario(scenario(name))
    finally:
        if saved is None:
            os.environ.pop("REPRO_CORE", None)
        else:
            os.environ["REPRO_CORE"] = saved
    return ins


class TestBackendEquivalence:
    @pytest.mark.parametrize("name", EQUIV_SCENARIOS)
    def test_ledger_bit_identical_object_vs_arena(self, name):
        """The exact backends make identical movement decisions, so every
        ledger entry — time, task, endpoints, cause — must match."""
        obj = _scenario_ledger(name, BACKEND_OBJECT)
        arena = _scenario_ledger(name, BACKEND_ARENA)
        assert obj.ledger.entries, f"{name} produced no ledger entries"
        assert obj.ledger.entries == arena.ledger.entries
        assert obj.ledger.totals == arena.ledger.totals

    def test_arena_fast_counts_reconcile_with_traffic_stats(self):
        """arena-fast batches decisions (entries aren't per-task), but its
        ledger must reconcile exactly with the node traffic counters."""
        from repro.experiments.common import build_env
        from repro.envs.environments import EnvKind
        from repro.util.rng import RngFactory
        from repro.workflows.ensembles import paper_batch

        specs = paper_batch(12, scale=1 / 128, rng_factory=RngFactory(5))
        saved = os.environ.get("REPRO_CORE")
        os.environ["REPRO_CORE"] = BACKEND_ARENA_FAST
        try:
            ins = Insight("fast-reconcile")
            with _insight.session(ins):
                env = build_env(EnvKind.IMME, specs, dram_fraction=0.3, n_nodes=2)
                env.run_batch(specs, max_time=1e7)
                stats = [agent.memory.stats for agent in env.agents]
                env.stop()
        finally:
            if saved is None:
                os.environ.pop("REPRO_CORE", None)
            else:
                os.environ["REPRO_CORE"] = saved
        migrated = sum(s.migrated_bytes for s in stats)
        assert np.array_equal(ins.ledger.migrated_matrix(), migrated)
        chunks = ins.ledger.chunks_by_kind()
        assert chunks.get("shadow", 0) == sum(s.page_cache_inserts for s in stats)
        assert chunks.get("shadow-drop", 0) == sum(s.page_cache_drops for s in stats)
