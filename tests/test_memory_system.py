"""NodeMemorySystem accounting tests, including a hypothesis state-machine
style random-operation check of the accounting invariant."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.pageset import PageSet
from repro.memory.system import NodeMemorySystem
from repro.memory.tiers import CXL, DRAM, PMEM, SWAP
from repro.util.errors import AllocationError
from repro.util.units import KiB, MiB

from conftest import CHUNK, make_pageset, small_specs


class TestRegistry:
    def test_register_and_unregister(self, node):
        ps = make_pageset(node, "a", MiB(1))
        assert node.get_pageset("a") is ps
        node.unregister(ps)
        assert node.get_pageset("a") is None

    def test_duplicate_owner_rejected(self, node):
        make_pageset(node, "a", MiB(1))
        with pytest.raises(Exception):
            make_pageset(node, "a", MiB(1))

    def test_unregister_releases_memory(self, node):
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(ps.n_chunks), DRAM)
        used_before = node.used(DRAM)
        assert used_before == MiB(1)
        node.unregister(ps)
        assert node.used(DRAM) == 0

    def test_must_register_before_place(self, node):
        ps = PageSet("ghost", MiB(1), CHUNK)
        with pytest.raises(Exception):
            node.place(ps, np.arange(ps.n_chunks), DRAM)


class TestPlace:
    def test_place_updates_accounting(self, node):
        ps = make_pageset(node, "a", MiB(1))
        placed = node.place(ps, np.arange(8), DRAM)
        assert placed == 8 * CHUNK
        assert node.used(DRAM) == 8 * CHUNK
        assert node.free(DRAM) == node.capacity(DRAM) - 8 * CHUNK
        node.validate()

    def test_place_empty_is_noop(self, node):
        ps = make_pageset(node, "a", MiB(1))
        assert node.place(ps, np.array([], dtype=np.int64), DRAM) == 0

    def test_place_over_capacity_raises(self, node):
        ps = make_pageset(node, "a", MiB(16))
        with pytest.raises(AllocationError):
            node.place(ps, np.arange(ps.n_chunks), DRAM)  # DRAM is 4 MiB

    def test_place_mapped_chunk_rejected(self, node):
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(4), DRAM)
        with pytest.raises(Exception):
            node.place(ps, np.arange(4), CXL)

    def test_place_reclaims_page_cache_for_room(self, node):
        ps = make_pageset(node, "a", MiB(4))
        node.place(ps, np.arange(ps.n_chunks), DRAM)
        # demote half to swap and shadow them: page cache fills DRAM
        half = np.arange(ps.n_chunks // 2)
        node.swap_out(ps, half)
        node.add_page_cache_shadow(ps, half)
        assert node.page_cache_used > 0
        # a fresh allocation must squeeze the cache out, not fail
        ps2 = make_pageset(node, "b", MiB(2))
        node.place(ps2, np.arange(ps2.n_chunks), DRAM)
        node.validate()


class TestMigrate:
    def test_migrate_moves_bytes(self, node):
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(8), DRAM)
        moved = node.migrate(ps, np.arange(4), CXL)
        assert moved == 4 * CHUNK
        assert node.used(DRAM) == 4 * CHUNK
        assert node.used(CXL) == 4 * CHUNK
        node.validate()

    def test_migrate_same_tier_is_noop(self, node):
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(4), DRAM)
        assert node.migrate(ps, np.arange(4), DRAM) == 0
        assert node.stats.total_migrated_bytes == 0

    def test_migrate_unmapped_rejected(self, node):
        ps = make_pageset(node, "a", MiB(1))
        with pytest.raises(Exception):
            node.migrate(ps, np.arange(2), CXL)

    def test_migrate_records_stats(self, node):
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(8), DRAM)
        node.swap_out(ps, np.arange(4))
        assert node.stats.swapped_out_bytes == 4 * CHUNK
        node.migrate(ps, np.arange(4), DRAM)
        assert node.stats.swapped_in_bytes == 4 * CHUNK
        assert node.stats.migrated_bytes[int(DRAM), int(SWAP)] == 4 * CHUNK

    def test_migration_window_accumulates(self, node):
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(8), DRAM)
        node.migrate(ps, np.arange(2), CXL)
        node.migrate(ps, np.arange(2, 4), CXL)
        assert node.migration_bytes_window == 4 * CHUNK

    def test_migrate_over_capacity_raises(self, node):
        ps = make_pageset(node, "a", MiB(12))
        node.place(ps, np.arange(ps.n_chunks), CXL)
        with pytest.raises(AllocationError):
            node.migrate(ps, np.arange(ps.n_chunks), DRAM)


class TestPageCache:
    def test_shadow_requires_non_dram(self, node):
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(4), DRAM)
        with pytest.raises(Exception):
            node.add_page_cache_shadow(ps, np.arange(4))

    def test_shadow_limited_by_free_dram(self):
        node = NodeMemorySystem(small_specs(dram=4 * CHUNK), "n")
        ps = make_pageset(node, "a", 8 * CHUNK)
        node.place(ps, np.arange(8), CXL)
        n = node.add_page_cache_shadow(ps, np.arange(8))
        assert n == 4  # only free DRAM worth of shadows
        assert node.page_cache_used == 4 * CHUNK
        node.validate()

    def test_promotion_to_dram_drops_shadow(self, node):
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(4), CXL)
        node.add_page_cache_shadow(ps, np.arange(4))
        node.migrate(ps, np.arange(4), DRAM)
        assert node.page_cache_used == 0
        assert not ps.in_page_cache.any()
        node.validate()

    def test_double_shadow_not_double_counted(self, node):
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(4), CXL)
        node.add_page_cache_shadow(ps, np.arange(4))
        before = node.page_cache_used
        node.add_page_cache_shadow(ps, np.arange(4))
        assert node.page_cache_used == before


class TestRssAndUtilization:
    def test_rss_excludes_page_cache(self, node):
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(8), CXL)
        node.add_page_cache_shadow(ps, np.arange(8))
        assert node.rss(DRAM) == 0
        assert node.used(DRAM) == 8 * CHUNK

    def test_utilization(self, node):
        ps = make_pageset(node, "a", MiB(2))
        node.place(ps, np.arange(ps.n_chunks), DRAM)
        assert node.utilization(DRAM) == pytest.approx(0.5)

    def test_compact_counts(self, node):
        node.compact()
        assert node.stats.compactions == 1


class TestAccountingInvariantProperty:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=40))
    def test_random_migrations_preserve_invariant(self, moves):
        """Any sequence of valid migrations keeps per-tier accounting equal
        to the union of pageset metadata."""
        node = NodeMemorySystem(small_specs(dram=MiB(8), pmem=MiB(8), cxl=MiB(8)), "n")
        ps = make_pageset(node, "a", MiB(2))
        node.place(ps, np.arange(ps.n_chunks), DRAM)
        tiers = [DRAM, PMEM, CXL, SWAP]
        for chunk_pick, tier_pick in moves:
            idx = np.array([chunk_pick % ps.n_chunks])
            try:
                node.migrate(ps, idx, tiers[tier_pick])
            except AllocationError:
                pass
            node.validate()
