"""Unit-helper tests: conversions are exact and formatting is sane."""

import pytest

from repro.util.units import (
    GB,
    KB,
    MB,
    TB,
    GBps,
    GiB,
    KiB,
    MBps,
    MiB,
    TiB,
    bytes_to_human,
    ms,
    ns,
    seconds,
    time_to_human,
    us,
)


class TestBinarySizes:
    def test_kib(self):
        assert KiB(1) == 1024

    def test_mib(self):
        assert MiB(1) == 1024**2

    def test_gib(self):
        assert GiB(1) == 1024**3

    def test_tib(self):
        assert TiB(1) == 1024**4

    def test_fractional_sizes_truncate_to_int(self):
        assert KiB(1.5) == 1536
        assert isinstance(KiB(1.5), int)

    def test_ordering(self):
        assert KiB(1) < MiB(1) < GiB(1) < TiB(1)


class TestDecimalSizes:
    def test_kb_mb_gb_tb(self):
        assert KB(1) == 1_000
        assert MB(1) == 1_000_000
        assert GB(1) == 1_000_000_000
        assert TB(1) == 1_000_000_000_000

    def test_decimal_smaller_than_binary(self):
        assert GB(1) < GiB(1)


class TestTime:
    def test_ns(self):
        assert ns(80) == pytest.approx(80e-9)

    def test_us(self):
        assert us(90) == pytest.approx(90e-6)

    def test_ms(self):
        assert ms(1.5) == pytest.approx(1.5e-3)

    def test_seconds_identity(self):
        assert seconds(3) == 3.0
        assert isinstance(seconds(3), float)


class TestBandwidth:
    def test_gbps(self):
        assert GBps(100) == pytest.approx(100e9)

    def test_mbps(self):
        assert MBps(1) == pytest.approx(1e6)

    def test_transfer_time_roundtrip(self):
        # 1 GiB over 1 GB/s is just over a second
        assert GiB(1) / GBps(1) == pytest.approx(1.0737, rel=1e-3)


class TestHumanFormatting:
    def test_bytes_human_gib(self):
        assert bytes_to_human(GiB(512)) == "512.0 GiB"

    def test_bytes_human_small(self):
        assert bytes_to_human(512) == "512 B"

    def test_bytes_human_negative(self):
        assert bytes_to_human(-MiB(2)).startswith("-2.0")

    def test_time_human_seconds(self):
        assert time_to_human(2.5) == "2.50 s"

    def test_time_human_ms(self):
        assert time_to_human(0.0015) == "1.50 ms"

    def test_time_human_us(self):
        assert time_to_human(15e-6) == "15.00 us"

    def test_time_human_ns(self):
        assert time_to_human(80e-9) == "80.0 ns"
