"""Discrete-event engine tests: ordering, cancellation, run semantics."""

import pytest

from repro.sim.engine import SimulationEngine
from repro.util.errors import SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self, engine):
        fired = []
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(3.0, lambda: fired.append("c"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self, engine):
        fired = []
        for tag in "abc":
            engine.schedule(1.0, lambda t=tag: fired.append(t))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, engine):
        seen = []
        engine.schedule(5.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [5.0]
        assert engine.now == 5.0

    def test_schedule_at_absolute(self, engine):
        engine.schedule_at(4.0, lambda: None)
        engine.run()
        assert engine.now == 4.0

    def test_cannot_schedule_in_past(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(0.5, lambda: None)

    def test_cannot_schedule_nan_or_inf(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule_at(float("nan"), lambda: None)
        with pytest.raises(SimulationError):
            engine.schedule_at(float("inf"), lambda: None)

    def test_events_scheduled_during_run_fire(self, engine):
        fired = []

        def first():
            engine.schedule(1.0, lambda: fired.append("second"))

        engine.schedule(1.0, first)
        engine.run()
        assert fired == ["second"]
        assert engine.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, engine):
        fired = []
        ev = engine.schedule(1.0, lambda: fired.append("x"))
        engine.cancel(ev)
        engine.run()
        assert fired == []

    def test_cancel_none_is_noop(self, engine):
        engine.cancel(None)

    def test_cancel_counts(self, engine):
        ev = engine.schedule(1.0, lambda: None)
        engine.cancel(ev)
        engine.cancel(ev)  # double-cancel is harmless
        assert engine.events_cancelled == 1

    def test_pending_excludes_cancelled(self, engine):
        ev = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.cancel(ev)
        assert engine.pending() == 1


class TestRunControl:
    def test_run_until_stops_clock_at_bound(self, engine):
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        engine.run()
        assert fired == [1, 10]

    def test_run_max_events(self, engine):
        fired = []
        for i in range(5):
            engine.schedule(i + 1.0, lambda i=i: fired.append(i))
        engine.run(max_events=2)
        assert fired == [0, 1]

    def test_step_returns_false_when_empty(self, engine):
        assert engine.step() is False

    def test_run_is_not_reentrant(self, engine):
        def evil():
            engine.run()

        engine.schedule(1.0, evil)
        with pytest.raises(SimulationError, match="re-entrant"):
            engine.run()

    def test_peek_time(self, engine):
        assert engine.peek_time() is None
        engine.schedule(3.0, lambda: None)
        assert engine.peek_time() == 3.0

    def test_events_fired_counter(self, engine):
        for _ in range(3):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.events_fired == 3

    def test_custom_start_time(self):
        eng = SimulationEngine(start_time=100.0)
        assert eng.now == 100.0
        eng.schedule(1.0, lambda: None)
        eng.run()
        assert eng.now == 101.0


class TestLiveEventCounter:
    """pending() is a maintained counter, not a heap scan — these pin the
    counter to the ground-truth scan through every mutation path."""

    @staticmethod
    def scan(engine):
        return sum(1 for ev in engine._heap if not ev.cancelled)

    def test_counter_matches_scan_through_lifecycle(self, engine):
        events = [engine.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert engine.pending() == self.scan(engine) == 10
        engine.cancel(events[3])
        engine.cancel(events[7])
        assert engine.pending() == self.scan(engine) == 8
        engine.step()
        assert engine.pending() == self.scan(engine) == 7
        engine.run(until=5.0)
        assert engine.pending() == self.scan(engine)
        engine.run()
        assert engine.pending() == self.scan(engine) == 0

    def test_double_cancel_counts_once(self, engine):
        ev = engine.schedule(1.0, lambda: None)
        engine.cancel(ev)
        engine.cancel(ev)
        assert engine.pending() == self.scan(engine) == 0

    def test_cancel_after_fire_does_not_underflow(self, engine):
        ev = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run(until=1.5)
        engine.cancel(ev)  # stale handle: already fired
        assert engine.pending() == self.scan(engine) == 1

    def test_cancel_after_fire_is_full_noop(self, engine):
        # a stale handle must not inflate events_cancelled either — the
        # event both fired *and* counted as cancelled would double-book it
        ev = engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.events_fired == 1
        engine.cancel(ev)
        engine.cancel(ev)
        assert engine.events_cancelled == 0
        assert not ev.cancelled  # it fired; it was never cancelled
        assert engine.pending() == self.scan(engine) == 0

    def test_counter_tracks_reschedule_churn(self, engine):
        # the rate model's pattern: cancel-and-reschedule completion events
        handle = engine.schedule(10.0, lambda: None)
        for i in range(100):
            engine.cancel(handle)
            handle = engine.schedule(10.0 + i, lambda: None)
            assert engine.pending() == self.scan(engine) == 1
