"""Property-based fuzzing of the core stack.

These push randomised inputs through the manager, the movement daemon,
and full environment runs, asserting the invariants that must survive
*any* input: complete placement, non-negative accounting, and clean
teardown.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.flags import MemFlag
from repro.core.manager import TieredMemoryManager
from repro.core.movement import MovementConfig
from repro.envs.environments import EnvKind, make_environment
from repro.memory.pageset import UNMAPPED, PageSet
from repro.memory.system import NodeMemorySystem
from repro.memory.tiers import DRAM, SWAP
from repro.policies.base import AllocationRequest, PolicyContext, stripe_assignment
from repro.util.units import KiB, MiB

from conftest import make_pageset, simple_task, small_specs

CHUNK = KiB(64)

FLAG_POOL = [
    MemFlag.NONE,
    MemFlag.LAT,
    MemFlag.BW,
    MemFlag.CAP,
    MemFlag.SHL,
    MemFlag.LAT | MemFlag.CAP,
    MemFlag.BW | MemFlag.CAP,
    MemFlag.LAT | MemFlag.SHL,
    MemFlag.LAT | MemFlag.BW | MemFlag.CAP,
]


class TestStripeAssignmentProperties:
    @given(st.lists(st.integers(min_value=0, max_value=64), min_size=1, max_size=6))
    def test_counts_exact(self, counts):
        out = stripe_assignment(counts)
        assert out.size == sum(counts)
        got = np.bincount(out, minlength=len(counts)) if out.size else np.zeros(len(counts))
        for k, c in enumerate(counts):
            if c > 0:
                assert got[k] == c

    @given(st.integers(min_value=2, max_value=32))
    def test_even_groups_alternate(self, n):
        out = stripe_assignment([n, n])
        # true interleaving: no run longer than 2 for equal groups
        runs = np.diff(np.flatnonzero(np.diff(out) != 0))
        if runs.size:
            assert runs.max() <= 2


class TestManagerPlacementFuzz:
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=40),      # chunks per request
                st.sampled_from(range(len(FLAG_POOL))),      # flags
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_every_request_fully_mapped(self, requests):
        """Whatever the flag/size mix, every chunk ends up mapped to a real
        tier and the node accounting stays consistent."""
        specs = small_specs(dram=MiB(1), pmem=MiB(2), cxl=MiB(64))
        node = NodeMemorySystem(specs, "fuzz")
        ctx = PolicyContext(memory=node, rng=np.random.default_rng(1))
        mgr = TieredMemoryManager(specs)
        for i, (n_chunks, flag_idx) in enumerate(requests):
            owner = f"task{i}"
            flags = FLAG_POOL[flag_idx]
            ps = PageSet(owner, n_chunks * CHUNK, CHUNK)
            ps.region[:] = 0
            ps.region_flags[0] = flags
            node.register(ps)
            mgr.place(ctx, ps, AllocationRequest(owner, 0, n_chunks * CHUNK, flags))
            assert not (ps.tier == UNMAPPED).any()
            node.validate()


class TestMovementTickFuzz:
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=1, max_value=8),
    )
    def test_random_heat_and_ticks_keep_invariants(self, seed, n_ticks):
        specs = small_specs(dram=MiB(2), pmem=MiB(2), cxl=MiB(64))
        node = NodeMemorySystem(specs, "fuzz")
        rng = np.random.default_rng(seed)
        ctx = PolicyContext(memory=node, rng=rng)
        mgr = TieredMemoryManager(
            specs, movement_config=MovementConfig(proactive_threshold=0.5,
                                                  proactive_target=0.3)
        )
        for i, flags in enumerate([MemFlag.LAT, MemFlag.CAP, MemFlag.BW]):
            ps = PageSet(f"t{i}", MiB(1), CHUNK)
            ps.region[:] = 0
            ps.region_flags[0] = flags
            node.register(ps)
            mgr.place(ctx, ps, AllocationRequest(f"t{i}", 0, MiB(1), flags))
        for _ in range(n_ticks):
            for ps in node.pagesets():
                ps.temperature = rng.random(ps.n_chunks).astype(np.float32)
                # pinned chunks must never move; remember where they are
            pinned_before = {
                ps.owner: (np.flatnonzero(ps.pinned), ps.tier[ps.pinned].copy())
                for ps in node.pagesets()
            }
            mgr.tick(ctx)
            node.validate()
            for ps in node.pagesets():
                idx, tiers = pinned_before[ps.owner]
                assert (ps.tier[idx] == tiers).all(), "pinned chunk moved"


class TestEndToEndFuzz:
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=6),
        st.sampled_from([EnvKind.CBE, EnvKind.TME, EnvKind.IMME]),
    )
    def test_random_batches_always_terminate_cleanly(self, seed, n_tasks, kind):
        rng = np.random.default_rng(seed)
        specs = []
        for i in range(n_tasks):
            specs.append(
                simple_task(
                    f"t{i}",
                    footprint=int(rng.integers(1, 30)) * CHUNK,
                    base_time=float(rng.uniform(0.5, 4.0)),
                    lat_frac=float(rng.uniform(0, 0.6)),
                    bw_frac=float(rng.uniform(0, 0.3)),
                    n_phases=int(rng.integers(1, 3)),
                    cores=int(rng.integers(1, 4)),
                )
            )
        total = sum(s.max_footprint for s in specs)
        env = make_environment(
            kind,
            dram_capacity=max(total // 3, 8 * CHUNK),
            chunk_size=CHUNK,
            validate_invariants=True,
        )
        metrics = env.run_batch(specs, max_time=1e6)
        assert len(metrics.completed()) + len(metrics.failed()) == n_tasks
        for node in env.topology.nodes:
            node.validate()
            assert node.rss(DRAM) == 0
            assert node.rss(SWAP) == 0
        env.stop()
