"""Interleave and default-allocation baseline tests."""

import numpy as np
import pytest

from repro.memory.tiers import CXL, DRAM, PMEM, SWAP
from repro.policies.base import AllocationRequest
from repro.policies.interleave import DefaultAllocationPolicy, UniformInterleavePolicy
from repro.util.units import MiB

from conftest import make_pageset


def place_all(ctx, policy, owner, nbytes):
    ps = make_pageset(ctx.memory, owner, nbytes)
    policy.place(ctx, ps, AllocationRequest(owner, 0, nbytes))
    return ps


class TestUniformInterleave:
    def test_roughly_equal_split(self, ctx):
        policy = UniformInterleavePolicy()
        ps = place_all(ctx, policy, "a", MiB(3))
        counts = ps.counts_by_tier()
        third = ps.n_chunks / 3
        for t in (DRAM, PMEM, CXL):
            assert counts[int(t)] == pytest.approx(third, abs=third * 0.35)

    def test_interleaving_is_strided_not_contiguous(self, ctx):
        policy = UniformInterleavePolicy()
        ps = place_all(ctx, policy, "a", MiB(3))
        # the first third of the footprint spans multiple tiers
        head = ps.tier[: ps.n_chunks // 3]
        assert len(set(head.tolist())) > 1

    def test_weighted_split(self, ctx):
        policy = UniformInterleavePolicy({DRAM: 3.0, CXL: 1.0})
        ps = place_all(ctx, policy, "a", MiB(2))
        counts = ps.counts_by_tier()
        assert counts[int(PMEM)] == 0
        assert counts[int(DRAM)] > counts[int(CXL)]

    def test_overflow_falls_to_other_tiers(self, ctx):
        policy = UniformInterleavePolicy({DRAM: 1.0, PMEM: 1.0})
        ps = place_all(ctx, policy, "a", MiB(10))  # DRAM 4 + PMEM 8 barely fit
        assert ps.mapped_bytes == ps.total_bytes
        assert ps.bytes_in(SWAP) == 0
        ctx.memory.validate()

    def test_bad_weights_rejected(self):
        with pytest.raises(Exception):
            UniformInterleavePolicy({DRAM: -1.0})
        with pytest.raises(Exception):
            UniformInterleavePolicy({DRAM: 0.0})

    def test_name_reflects_weighting(self):
        assert UniformInterleavePolicy().name == "uniform-interleave"
        assert UniformInterleavePolicy({DRAM: 1.0}).name == "weighted-interleave"


class TestDefaultAllocation:
    def test_dram_then_cxl(self, ctx):
        policy = DefaultAllocationPolicy()
        ps = place_all(ctx, policy, "a", MiB(6))
        assert ps.bytes_in(DRAM) == MiB(4)
        assert ps.bytes_in(CXL) == MiB(2)
        assert ps.bytes_in(PMEM) == 0

    def test_no_tick_movement(self, ctx):
        policy = DefaultAllocationPolicy()
        ps = place_all(ctx, policy, "a", MiB(6))
        before = ps.tier.copy()
        policy.tick(ctx)
        assert np.array_equal(ps.tier, before)

    def test_custom_order(self, ctx):
        policy = DefaultAllocationPolicy(order=(CXL,))
        ps = place_all(ctx, policy, "a", MiB(2))
        assert ps.bytes_in(CXL) == MiB(2)
