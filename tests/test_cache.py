"""Content-addressed sweep-cell cache: key sensitivity, fingerprints,
store robustness, and end-to-end warm-run equivalence."""

import os
import sys
import textwrap

import numpy as np
import pytest

import repro
from repro.cache import (
    CacheKey,
    CacheKeyError,
    ResultCache,
    canonicalize,
    cell_keys,
    clear_fingerprint_caches,
    closure_fingerprint,
    import_closure,
)
from repro.experiments.common import SweepSpec, cell_cache_key, sweep
from repro.experiments.runner import run_all
from repro.util.units import KiB
from repro.workflows.task import WorkloadClass


def seeded_cell(seed: int, scale: float = 1.0):
    return float(np.random.default_rng(seed).random()) * scale


def array_cell(seed: int):
    rng = np.random.default_rng(seed)
    return {
        "f32": rng.random(5, dtype=np.float32),
        "i16": np.arange(4, dtype=np.int16),
        "scalar": np.float64(seed),
        "pair": (seed, float(seed)),
    }


class TestCanonicalize:
    def test_plain_values_are_distinct_and_stable(self):
        assert canonicalize(1) != canonicalize(1.0)
        assert canonicalize("a") != canonicalize("b")
        assert canonicalize((1, 2)) != canonicalize([1, 2])
        assert canonicalize({"a": 1, "b": 2}) == canonicalize({"b": 2, "a": 1})

    def test_enum_and_class_keyed_dicts(self):
        mix = {WorkloadClass.DL: 2, WorkloadClass.DM: 3}
        assert canonicalize(mix) == canonicalize(dict(reversed(mix.items())))
        assert "WorkloadClass.DL" in canonicalize(WorkloadClass.DL)

    def test_numpy_values(self):
        assert canonicalize(np.float64(2.5)) != canonicalize(2.5)
        a = np.arange(3, dtype=np.int32)
        assert canonicalize(a) == canonicalize(a.copy())
        assert canonicalize(a) != canonicalize(a.astype(np.int64))

    def test_unstable_values_rejected(self):
        with pytest.raises(CacheKeyError):
            canonicalize(object())
        with pytest.raises(CacheKeyError):
            canonicalize(lambda: None)


class TestKeySensitivity:
    KW = {"kind": "IMME", "scale": 1 / 64, "mix": {WorkloadClass.DL: 2}}

    def test_identical_inputs_identical_keys(self):
        a = cell_keys(seeded_cell, self.KW, seed=7)
        b = cell_keys(seeded_cell, dict(self.KW), seed=7)
        assert a == b

    def test_seed_changes_key(self):
        a = cell_keys(seeded_cell, self.KW, seed=7)
        b = cell_keys(seeded_cell, self.KW, seed=8)
        assert a.cell_id != b.cell_id

    def test_any_kwarg_changes_key(self):
        base = cell_keys(seeded_cell, self.KW, seed=7)
        for name, value in [
            ("kind", "TME"),
            ("scale", 1 / 128),
            ("mix", {WorkloadClass.DL: 3}),
        ]:
            changed = cell_keys(seeded_cell, {**self.KW, name: value}, seed=7)
            assert changed.cell_id != base.cell_id, name

    def test_function_identity_changes_key(self):
        a = cell_keys(seeded_cell, {}, seed=7)
        b = cell_keys(array_cell, {}, seed=7)
        assert a.cell_id != b.cell_id

    def test_version_changes_content_key_only(self, monkeypatch):
        a = cell_keys(seeded_cell, self.KW, seed=7)
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        b = cell_keys(seeded_cell, self.KW, seed=7)
        assert a.cell_id == b.cell_id
        assert a.content_key != b.content_key


@pytest.fixture
def fake_pkg(tmp_path, monkeypatch):
    """A throwaway package: alpha imports beta; gamma stands alone."""
    root = tmp_path / "fakepkg_cache_test"
    root.mkdir()
    (root / "__init__.py").write_text("")
    (root / "alpha.py").write_text(
        textwrap.dedent(
            """
            from .beta import helper

            def cell(x):
                return helper(x)
            """
        )
    )
    (root / "beta.py").write_text("def helper(x):\n    return x + 1\n")
    (root / "gamma.py").write_text("UNRELATED = True\n")
    monkeypatch.syspath_prepend(str(tmp_path))
    clear_fingerprint_caches()
    yield root
    clear_fingerprint_caches()
    for mod in [m for m in sys.modules if m.startswith("fakepkg_cache_test")]:
        del sys.modules[mod]


class TestFingerprint:
    def test_closure_contains_transitive_imports_only(self, fake_pkg):
        closure = import_closure("fakepkg_cache_test.alpha", root="fakepkg_cache_test")
        assert "fakepkg_cache_test.alpha" in closure
        assert "fakepkg_cache_test.beta" in closure
        assert "fakepkg_cache_test.gamma" not in closure

    def test_editing_imported_module_changes_fingerprint(self, fake_pkg):
        before = closure_fingerprint("fakepkg_cache_test.alpha", root="fakepkg_cache_test")
        (fake_pkg / "beta.py").write_text("def helper(x):\n    return x + 2\n")
        clear_fingerprint_caches()
        after = closure_fingerprint("fakepkg_cache_test.alpha", root="fakepkg_cache_test")
        assert before != after

    def test_editing_unrelated_module_keeps_fingerprint(self, fake_pkg):
        before = closure_fingerprint("fakepkg_cache_test.alpha", root="fakepkg_cache_test")
        (fake_pkg / "gamma.py").write_text("UNRELATED = False\n")
        clear_fingerprint_caches()
        after = closure_fingerprint("fakepkg_cache_test.alpha", root="fakepkg_cache_test")
        assert before == after

    def test_repro_experiment_closure_reaches_policies(self):
        closure = import_closure("repro.experiments.fig05_exec_time")
        assert "repro.experiments.common" in closure
        assert "repro.policies.linux" in closure
        assert "repro.memory.pageset" in closure

    def test_source_edit_invalidates_only_dependent_cells(self, fake_pkg, tmp_path):
        """The acceptance shape: editing one module misses exactly the
        cells whose import closure contains it."""
        import fakepkg_cache_test.alpha as alpha

        dependent = cell_keys(alpha.cell, {"x": 1}, seed=0, root="fakepkg_cache_test")
        unrelated = cell_keys(seeded_cell, {}, seed=0)  # closure is repro's
        cache = ResultCache(tmp_path / "store")
        cache.put(dependent, 2)
        cache.put(unrelated, 0.5)
        (fake_pkg / "beta.py").write_text("def helper(x):\n    return x + 10\n")
        clear_fingerprint_caches()
        dependent2 = cell_keys(alpha.cell, {"x": 1}, seed=0, root="fakepkg_cache_test")
        assert dependent2.cell_id == dependent.cell_id
        assert dependent2.content_key != dependent.content_key
        hit, _ = cache.get(dependent2)
        assert not hit and cache.stats.invalidations == 1
        hit, value = cache.get(unrelated)
        assert hit and value == 0.5


class TestStore:
    def test_miss_then_hit_roundtrip_is_exact(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cell_keys(array_cell, {}, seed=3)
        hit, _ = cache.get(key)
        assert not hit and cache.stats.misses == 1
        live = array_cell(3)
        assert cache.put(key, live)
        hit, cached = cache.get(key)
        assert hit and cache.stats.hits == 1
        assert cached["f32"].dtype == np.float32
        assert cached["i16"].dtype == np.int16
        np.testing.assert_array_equal(cached["f32"], live["f32"])
        assert type(cached["scalar"]) is np.float64
        assert cached["pair"] == (3, 3.0)
        assert isinstance(cached["pair"], tuple)

    def test_none_key_is_a_miss_and_not_written(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(None) == (False, None)
        assert not cache.put(None, 1)
        assert len(cache) == 0

    @pytest.mark.parametrize(
        "corruption",
        [b"", b"{", b"not json at all", b'{"codec": 999, "payload": 1}'],
        ids=["empty", "truncated", "garbage", "foreign-version"],
    )
    def test_corrupt_files_are_misses_not_errors(self, tmp_path, corruption):
        cache = ResultCache(tmp_path)
        key = cell_keys(seeded_cell, {}, seed=1)
        cache.put(key, 0.25)
        cache.path_for(key).write_bytes(corruption)
        hit, value = cache.get(key)
        assert not hit and value is None
        assert cache.stats.corrupt == 1

    def test_corrupt_file_quarantined_for_postmortem(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cell_keys(seeded_cell, {}, seed=9)
        cache.put(key, 0.5)
        path = cache.path_for(key)
        path.write_bytes(b"not json at all")
        assert cache.get(key) == (False, None)
        # the evidence moves aside instead of being re-read every probe
        assert not path.exists()
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.read_bytes() == b"not json at all"
        assert len(cache) == 0  # .corrupt files are not live entries
        hit, _ = cache.get(key)
        assert not hit and cache.stats.corrupt == 1  # second probe: plain miss
        assert cache.put(key, 0.5)  # and the slot is writable again
        assert cache.get(key) == (True, 0.5)

    def test_truncated_valid_prefix_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cell_keys(seeded_cell, {}, seed=2)
        cache.put(key, {"series": [1.0, 2.0]})
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[:-7])
        assert cache.get(key) == (False, None)
        assert cache.stats.corrupt == 1

    def test_stale_content_key_counts_invalidation_and_overwrites(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cell_keys(seeded_cell, {}, seed=4)
        stale = CacheKey(cell_id=key.cell_id, content_key="0" * 64)
        cache.put(stale, "old")
        hit, _ = cache.get(key)
        assert not hit and cache.stats.invalidations == 1
        cache.put(key, "new")
        assert len(cache) == 1  # one logical cell, one slot
        assert cache.get(key) == (True, "new")

    def test_uncacheable_result_skipped_quietly(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cell_keys(seeded_cell, {}, seed=5)
        assert not cache.put(key, object())
        assert cache.stats.uncacheable == 1
        assert len(cache) == 0

    def test_atomic_writes_leave_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        for s in range(5):
            cache.put(cell_keys(seeded_cell, {}, seed=s), float(s))
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []
        assert len(cache) == 5


class TestSweepCaching:
    def test_sweep_hits_skip_execution_and_match_live(self, tmp_path):
        spec = SweepSpec("cache-sweep", base_seed=9)
        for i in range(4):
            spec.add_seeded(f"r{i}", seeded_cell, scale=2.0)
        live = sweep(spec)
        cache = ResultCache(tmp_path)
        cold = sweep(spec, cache=cache)
        assert cold == live
        assert cache.stats.misses == 4 and cache.stats.writes == 4
        warm_cache = ResultCache(tmp_path)
        warm = sweep(spec, cache=warm_cache)
        assert warm == live
        assert warm_cache.stats.hits == 4 and warm_cache.stats.misses == 0

    def test_cell_key_covers_sweep_identity(self):
        spec_a = SweepSpec("name-a", base_seed=1)
        spec_b = SweepSpec("name-b", base_seed=1)
        cell_a = spec_a.add("c", seeded_cell, seed=0)
        cell_b = spec_b.add("c", seeded_cell, seed=0)
        assert cell_cache_key(spec_a, cell_a) != cell_cache_key(spec_b, cell_b)

    def test_unkeyable_cells_run_live(self, tmp_path):
        spec = SweepSpec("unkeyable", base_seed=0)
        spec.add("bad", seeded_cell, seed=0, scale=1.0)
        spec.cells[0].kwargs["opaque"] = object()  # defeat canonicalization

        def patched(seed, scale, opaque):
            return seeded_cell(seed, scale)

        spec.cells[0] = type(spec.cells[0])("bad", patched, spec.cells[0].kwargs)
        cache = ResultCache(tmp_path)
        out = sweep(spec, cache=cache)
        assert out["bad"] == seeded_cell(0, 1.0)
        assert cache.stats.writes == 0  # never cached, never trusted


class TestRunAllCaching:
    SUBSET = ["validation", "cold-pages"]

    def test_warm_run_all_is_byte_identical(self, tmp_path):
        cache_dir = str(tmp_path / "runall")
        cold = run_all(self.SUBSET, verbose=False, cache_dir=cache_dir)
        warm = run_all(self.SUBSET, verbose=False, cache_dir=cache_dir)
        for name in self.SUBSET:
            assert warm[name].to_table() == cold[name].to_table()
            assert warm[name].to_csv() == cold[name].to_csv()
            assert warm[name].notes == cold[name].notes

    def test_warm_run_matches_live_run(self, tmp_path):
        cache_dir = str(tmp_path / "runall-live")
        run_all(self.SUBSET, verbose=False, cache_dir=cache_dir)
        warm = run_all(self.SUBSET, verbose=False, cache_dir=cache_dir)
        live = run_all(self.SUBSET, verbose=False, cache_dir=None)
        for name in self.SUBSET:
            assert warm[name].to_csv() == live[name].to_csv()

    def test_cache_stats_reported(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "stats")
        run_all(["validation"], verbose=False, cache_dir=cache_dir, cache_stats=True)
        out = capsys.readouterr().out
        assert "result cache" in out
        run_all(["validation"], verbose=True, cache_dir=cache_dir)
        out = capsys.readouterr().out
        assert "cache: 1 hits, 0 misses" in out

    def test_cache_disabled_reports_nothing(self, capsys):
        run_all(["validation"], verbose=True, cache_dir=None)
        out = capsys.readouterr().out
        assert "cache:" not in out

    @pytest.mark.skipif(
        "fork" not in __import__("multiprocessing").get_all_start_methods(),
        reason="no fork on this platform",
    )
    def test_parallel_and_sequential_identical_with_cache_on(self, tmp_path):
        cache_dir = str(tmp_path / "par")
        par = run_all(self.SUBSET, verbose=False, jobs=4, cache_dir=cache_dir)
        seq = run_all(self.SUBSET, verbose=False, jobs=1, cache_dir=cache_dir)
        live = run_all(self.SUBSET, verbose=False, cache_dir=None)
        for name in self.SUBSET:
            assert par[name].to_csv() == seq[name].to_csv() == live[name].to_csv()


class TestCLI:
    def test_no_cache_and_cache_stats_flags(self, tmp_path, capsys):
        from repro.experiments.runner import main

        assert main(["validation", "--quiet", "--no-cache"]) == 0
        cache_dir = str(tmp_path / "cli")
        assert main(["validation", "--quiet", "--cache-dir", cache_dir, "--cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "result cache" in out
        assert os.path.isdir(cache_dir)
