"""UtilizationSampler tests."""

import numpy as np
import pytest

from repro.memory.system import NodeMemorySystem
from repro.memory.tiers import CXL, DRAM
from repro.metrics.timeline import UtilizationSampler
from repro.sim.engine import SimulationEngine
from repro.util.units import MiB

from conftest import CHUNK, make_pageset, small_specs


@pytest.fixture
def setup():
    engine = SimulationEngine()
    nodes = [NodeMemorySystem(small_specs(), f"n{i}") for i in range(2)]
    sampler = UtilizationSampler(engine, nodes, interval=1.0)
    return engine, nodes, sampler


class TestSampling:
    def test_samples_at_interval(self, setup):
        engine, nodes, sampler = setup
        sampler.start()
        engine.run(until=5.5)
        assert sampler.n_samples == 5
        times, data = sampler.as_arrays()
        assert list(times) == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert data.shape == (5, 2, 4)

    def test_captures_residency_changes(self, setup):
        engine, nodes, sampler = setup
        sampler.start()
        ps = make_pageset(nodes[0], "a", MiB(2))

        def place():
            nodes[0].place(ps, np.arange(ps.n_chunks), DRAM)

        engine.schedule(2.5, place)
        engine.run(until=5.5)
        series = sampler.cluster_series(DRAM)
        assert series[0] == 0 and series[1] == 0
        assert series[2] == MiB(2) and series[4] == MiB(2)

    def test_peak_and_mean(self, setup):
        engine, nodes, sampler = setup
        sampler.start()
        ps = make_pageset(nodes[1], "a", MiB(1))
        nodes[1].place(ps, np.arange(ps.n_chunks), DRAM)
        engine.run(until=3.5)
        assert sampler.peak(DRAM) == MiB(1)
        assert 0 < sampler.mean_utilization(DRAM) <= 1

    def test_empty_sampler(self, setup):
        _, _, sampler = setup
        assert sampler.n_samples == 0
        assert sampler.peak(CXL) == 0
        assert sampler.mean_utilization(DRAM) == 0.0

    def test_stop_halts_sampling(self, setup):
        engine, _, sampler = setup
        sampler.start()
        engine.run(until=2.5)
        sampler.stop()
        engine.run(until=10.0)
        assert sampler.n_samples == 2

    def test_environment_integration(self):
        from repro.envs.environments import EnvKind, make_environment
        from conftest import simple_task

        env = make_environment(EnvKind.IMME, dram_capacity=MiB(16), chunk_size=CHUNK)
        sampler = UtilizationSampler(env.engine, env.topology.nodes, interval=0.5)
        sampler.start()
        env.run_batch([simple_task("t", footprint=MiB(2), base_time=3.0)])
        sampler.stop()
        assert sampler.peak(DRAM) > 0
        env.stop()
