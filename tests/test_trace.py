"""Tracer and trace-integration tests."""

import json

import pytest

from repro.memory.system import NodeMemorySystem
from repro.policies.linux import LinuxSwapPolicy
from repro.runtime.node_agent import NodeAgent
from repro.sim.trace import TraceEvent, Tracer
from repro.util.units import MiB

from conftest import CHUNK, simple_task, small_specs


class TestTracer:
    def test_emit_and_query(self):
        tr = Tracer()
        tr.emit(1.0, "task", "a", event="started")
        tr.emit(2.0, "task", "b", event="started")
        tr.emit(3.0, "daemon", "n0", migrated_bytes=42)
        assert len(tr) == 3
        assert [e.subject for e in tr.events("task")] == ["a", "b"]
        assert tr.events("task", subject="b")[0].time == 2.0
        assert tr.events("daemon")[0].data["migrated_bytes"] == 42

    def test_category_filter_drops_at_emit(self):
        tr = Tracer(categories=["task"])
        tr.emit(1.0, "task", "a")
        tr.emit(1.0, "daemon", "n0")
        assert len(tr) == 1
        assert not tr.wants("daemon")

    def test_capacity_ring_buffer(self):
        tr = Tracer(capacity=2)
        for i in range(5):
            tr.emit(float(i), "x", f"s{i}")
        assert len(tr) == 2
        assert tr.dropped == 3
        assert tr.events()[0].subject == "s3"

    def test_capacity_eviction_is_constant_time(self):
        # the buffer must be a bounded deque: saturating it twice over must
        # not degrade (a list.pop(0) buffer turns this quadratic) and the
        # drop/eviction accounting must stay exact at any overshoot
        cap = 1000
        tr = Tracer(capacity=cap)
        for i in range(3 * cap):
            tr.emit(float(i), "x", f"s{i}")
        assert len(tr) == cap
        assert tr.dropped == 2 * cap
        assert tr.events()[0].subject == f"s{2 * cap}"
        assert tr.events()[-1].subject == f"s{3 * cap - 1}"
        from collections import deque

        assert isinstance(tr._events, deque) and tr._events.maxlen == cap

    def test_jsonl_roundtrip(self):
        tr = Tracer()
        tr.emit(1.5, "task", "a", event="started", node="n0")
        line = tr.to_jsonl()
        payload = json.loads(line)
        assert payload == {"t": 1.5, "cat": "task", "subj": "a", "event": "started", "node": "n0"}

    def test_write_jsonl(self, tmp_path):
        tr = Tracer()
        tr.emit(1.0, "a", "b")
        tr.emit(2.0, "a", "c")
        path = tmp_path / "trace.jsonl"
        tr.write_jsonl(str(path))
        assert len(path.read_text().strip().splitlines()) == 2

    def test_clear(self):
        tr = Tracer()
        tr.emit(1.0, "a", "b")
        tr.clear()
        assert len(tr) == 0


class TestRuntimeTracing:
    def test_task_lifecycle_traced(self, engine, metrics):
        tracer = Tracer()
        node = NodeMemorySystem(small_specs(dram=MiB(8)), "n0")
        agent = NodeAgent(
            engine, node, LinuxSwapPolicy(scan_noise=0.0), metrics,
            cores=4, chunk_size=CHUNK, tracer=tracer,
        )
        agent.start_task(simple_task("t", footprint=MiB(1), base_time=3.0, n_phases=2))
        engine.run(until=100.0)
        task_events = [e.data["event"] for e in tracer.events("task", subject="t")]
        assert task_events == ["started", "finished"]
        phases = tracer.events("phase", subject="t")
        assert [e.data["index"] for e in phases] == [0, 1]
        assert len(tracer.events("daemon")) > 0

    def test_no_tracer_is_silent(self, engine, metrics):
        node = NodeMemorySystem(small_specs(dram=MiB(8)), "n0")
        agent = NodeAgent(
            engine, node, LinuxSwapPolicy(scan_noise=0.0), metrics,
            cores=4, chunk_size=CHUNK,
        )
        agent.start_task(simple_task("t", footprint=MiB(1), base_time=1.0))
        engine.run(until=10.0)  # simply must not crash
        assert metrics.get("t").done
