"""Policy-base tests: cascade placement, default fault-in, release."""

import numpy as np
import pytest

from repro.core.flags import MemFlag
from repro.memory.tiers import CXL, DRAM, PMEM, SWAP
from repro.policies.base import AllocationRequest, MemoryPolicy, cascade_place
from repro.policies.linux import LinuxSwapPolicy
from repro.util.errors import OutOfMemoryError
from repro.util.units import MiB

from conftest import CHUNK, make_pageset


class PassthroughPolicy(MemoryPolicy):
    """Minimal concrete policy for exercising base-class behaviour."""

    name = "passthrough"

    def place(self, ctx, ps, request):
        idx = ctx.region_chunks(ps, request.region)
        cascade_place(ctx, ps, idx, (DRAM,))


class TestAllocationRequest:
    def test_valid(self):
        r = AllocationRequest("o", 0, MiB(1), MemFlag.LAT)
        assert r.flags is MemFlag.LAT

    def test_zero_bytes_rejected(self):
        with pytest.raises(Exception):
            AllocationRequest("o", 0, 0)


class TestCascadePlace:
    def test_fills_in_order(self, ctx):
        ps = make_pageset(ctx.memory, "a", MiB(6))  # DRAM 4M, PMEM 8M
        placed = cascade_place(ctx, ps, np.arange(ps.n_chunks), (DRAM, PMEM))
        assert placed[DRAM] == MiB(4)
        assert placed[PMEM] == MiB(2)

    def test_overflow_to_swap_by_default(self, ctx):
        ps = make_pageset(ctx.memory, "a", MiB(5))
        placed = cascade_place(ctx, ps, np.arange(ps.n_chunks), (DRAM,))
        assert placed[DRAM] == MiB(4)
        assert placed[SWAP] == MiB(1)

    def test_no_swap_raises_when_full(self, ctx):
        ps = make_pageset(ctx.memory, "a", MiB(5))
        with pytest.raises(OutOfMemoryError):
            cascade_place(ctx, ps, np.arange(ps.n_chunks), (DRAM,), allow_swap=False)

    def test_empty_index_noop(self, ctx):
        ps = make_pageset(ctx.memory, "a", MiB(1))
        assert cascade_place(ctx, ps, np.array([], dtype=np.int64), (DRAM,)) == {}


class TestDefaultFaultIn:
    def _swapped_pageset(self, ctx, nbytes=MiB(1)):
        ps = make_pageset(ctx.memory, "a", nbytes)
        ctx.memory.place(ps, np.arange(ps.n_chunks), DRAM)
        ctx.memory.swap_out(ps, np.arange(ps.n_chunks))
        return ps

    def test_major_faults_recorded_and_pages_pulled_in(self, ctx):
        majors = {}
        ctx.record_major = lambda owner, n: majors.__setitem__(owner, n)
        ps = self._swapped_pageset(ctx)
        PassthroughPolicy().fault_in(ctx, ps, np.arange(ps.n_chunks))
        assert majors["a"] == ps.n_chunks
        assert ps.bytes_in(SWAP) == 0

    def test_shadowed_chunks_are_minor_faults(self, ctx):
        minors = {}
        ctx.record_minor = lambda owner, n: minors.__setitem__(owner, n)
        ps = self._swapped_pageset(ctx)
        ctx.memory.add_page_cache_shadow(ps, np.arange(4))
        PassthroughPolicy().fault_in(ctx, ps, np.arange(4))
        assert minors["a"] == 4

    def test_non_swapped_chunks_ignored(self, ctx):
        faults = []
        ctx.record_major = lambda owner, n: faults.append(n)
        ps = make_pageset(ctx.memory, "a", MiB(1))
        ctx.memory.place(ps, np.arange(ps.n_chunks), DRAM)
        PassthroughPolicy().fault_in(ctx, ps, np.arange(ps.n_chunks))
        assert faults == []

    def test_fault_in_order_skips_zero_capacity_tiers(self, ctx):
        order = PassthroughPolicy().fault_in_order(ctx)
        assert order == (DRAM, PMEM, CXL)


class TestRelease:
    def test_release_returns_bytes_to_tiers(self, ctx):
        policy = PassthroughPolicy()
        ps = make_pageset(ctx.memory, "a", MiB(2))
        ctx.memory.place(ps, np.arange(ps.n_chunks), DRAM)
        policy.release(ctx, ps, np.arange(ps.n_chunks // 2))
        assert ctx.memory.used(DRAM) == MiB(1)
        ctx.memory.validate()

    def test_release_drops_shadows(self, ctx):
        policy = PassthroughPolicy()
        ps = make_pageset(ctx.memory, "a", MiB(1))
        ctx.memory.place(ps, np.arange(ps.n_chunks), CXL)
        ctx.memory.add_page_cache_shadow(ps, np.arange(ps.n_chunks))
        policy.release(ctx, ps, np.arange(ps.n_chunks))
        assert ctx.memory.page_cache_used == 0
        ctx.memory.validate()

    def test_release_unmapped_is_noop(self, ctx):
        policy = PassthroughPolicy()
        ps = make_pageset(ctx.memory, "a", MiB(1))
        policy.release(ctx, ps, np.arange(ps.n_chunks))
        ctx.memory.validate()
