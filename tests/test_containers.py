"""Container runtime tests: registry, contended pulls, caching, CXL staging."""

import pytest

from repro.containers.image import ContainerImage, ImageRegistry, default_images
from repro.containers.runtime import ContainerRuntime, NetworkFabric
from repro.core.sharing import SharedMemoryManager
from repro.memory.topology import SharedCXLPool
from repro.util.errors import ContainerError
from repro.util.units import GB, GBps, GiB, MiB


@pytest.fixture
def registry():
    reg = ImageRegistry()
    reg.add(ContainerImage("app.sif", GB(1)))
    reg.add(ContainerImage("tiny.sif", MiB(10)))
    return reg


def make_runtime(engine, registry, shared=None, n_nodes=2):
    fabric = NetworkFabric(engine, bandwidth=GBps(1.0))
    rt = ContainerRuntime(
        engine, registry, fabric, n_nodes, shared_memory=shared, instantiation_time=0.5
    )
    return rt, fabric


class TestRegistry:
    def test_lookup(self, registry):
        assert registry.get("app.sif").size == GB(1)
        assert "app.sif" in registry
        assert len(registry) == 2

    def test_unknown_image(self, registry):
        with pytest.raises(ContainerError):
            registry.get("ghost.sif")

    def test_default_images_cover_workloads(self):
        reg = default_images()
        for name in ("dl-bert.sif", "dm-spark.sif", "dc-zip.sif", "sc-igraph.sif"):
            assert name in reg


class TestPulls:
    def test_single_pull_duration(self, engine, registry):
        rt, _ = make_runtime(engine, registry)
        ready = []
        rt.prepare(0, "app.sif", lambda: ready.append(engine.now))
        engine.run()
        # 1 GB over 1 GB/s + 0.5s instantiation
        assert ready[0] == pytest.approx(1.5, rel=1e-3)
        assert rt.network_pulls == 1

    def test_concurrent_pulls_share_the_link(self, engine, registry):
        rt, _ = make_runtime(engine, registry)
        ready = []
        rt.prepare(0, "app.sif", lambda: ready.append(engine.now))
        rt.prepare(1, "app.sif", lambda: ready.append(engine.now))
        engine.run()
        # two 1 GB pulls over a shared 1 GB/s link: ~2s each + instantiation
        assert ready[-1] == pytest.approx(2.5, rel=1e-2)

    def test_cache_hit_skips_pull(self, engine, registry):
        rt, fabric = make_runtime(engine, registry)
        rt.prepare(0, "app.sif", lambda: None)
        engine.run()
        t0 = engine.now
        ready = []
        rt.prepare(0, "app.sif", lambda: ready.append(engine.now))
        engine.run()
        assert rt.cache_hits == 1
        assert ready[0] == pytest.approx(t0 + 0.5, rel=1e-3)

    def test_caches_are_per_node(self, engine, registry):
        rt, _ = make_runtime(engine, registry)
        rt.prepare(0, "app.sif", lambda: None)
        engine.run()
        assert rt.is_cached(0, "app.sif")
        assert not rt.is_cached(1, "app.sif")


class TestCXLStaging:
    def make_shared(self):
        return SharedMemoryManager(SharedCXLPool(GiB(8)), n_nodes=2)

    def test_staged_image_read_from_cxl(self, engine, registry):
        shared = self.make_shared()
        rt, fabric = make_runtime(engine, registry, shared=shared)
        rt.stage_image("app.sif")
        ready = []
        rt.prepare(0, "app.sif", lambda: ready.append(engine.now))
        engine.run()
        assert rt.cxl_reads == 1
        assert rt.network_pulls == 0
        assert fabric.completed_transfers == 0
        # CXL read at 30 GB/s is far faster than the 1 GB/s network
        assert ready[0] < 0.6

    def test_stage_requires_shared_manager(self, engine, registry):
        rt, _ = make_runtime(engine, registry, shared=None)
        with pytest.raises(Exception):
            rt.stage_image("app.sif")

    def test_stage_idempotent(self, engine, registry):
        shared = self.make_shared()
        rt, _ = make_runtime(engine, registry, shared=shared)
        rt.stage_image("app.sif")
        rt.stage_image("app.sif")
        assert shared.staged_bytes == GB(1)

    def test_cxl_read_populates_node_cache(self, engine, registry):
        shared = self.make_shared()
        rt, _ = make_runtime(engine, registry, shared=shared)
        rt.stage_image("tiny.sif")
        rt.prepare(1, "tiny.sif", lambda: None)
        engine.run()
        assert rt.is_cached(1, "tiny.sif")
        ready = []
        rt.prepare(1, "tiny.sif", lambda: ready.append(True))
        engine.run()
        assert rt.cache_hits == 1


class TestNetworkFabric:
    def test_bytes_accounted(self, engine):
        fabric = NetworkFabric(engine, bandwidth=GBps(1.0))
        fabric.transfer(GB(2), lambda: None)
        assert fabric.bytes_transferred == GB(2)
        assert fabric.active_count == 1
        engine.run()
        assert fabric.active_count == 0
        assert fabric.completed_transfers == 1

    def test_fairness_late_joiner(self, engine):
        """A transfer that joins halfway slows the first one down."""
        fabric = NetworkFabric(engine, bandwidth=GBps(1.0))
        done = {}
        fabric.transfer(GB(1), lambda: done.setdefault("a", engine.now))
        engine.schedule(0.5, lambda: fabric.transfer(GB(1), lambda: done.setdefault("b", engine.now)))
        engine.run()
        assert done["a"] == pytest.approx(1.5, rel=1e-2)  # 0.5 alone + 1.0 shared
        assert done["b"] == pytest.approx(2.0, rel=1e-2)
