"""Max-min fair bandwidth-sharing tests (with hypothesis properties)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.memory.contention import allocate_bandwidth, fair_share


class TestFairShare:
    def test_undersubscribed_everyone_satisfied(self):
        alloc = fair_share(100.0, np.array([10.0, 20.0, 30.0]))
        assert np.allclose(alloc, [10, 20, 30])

    def test_equal_demands_split_evenly(self):
        alloc = fair_share(90.0, np.array([100.0, 100.0, 100.0]))
        assert np.allclose(alloc, [30, 30, 30])

    def test_small_demand_returns_surplus(self):
        # classic max-min example: {2, 8} sharing 8 -> {2, 6}
        alloc = fair_share(8.0, np.array([2.0, 8.0]))
        assert np.allclose(alloc, [2, 6])

    def test_three_level_waterfill(self):
        alloc = fair_share(10.0, np.array([1.0, 3.0, 20.0]))
        # 1 satisfied; 3 satisfied; 20 gets remainder 6
        assert np.allclose(alloc, [1, 3, 6])

    def test_zero_capacity(self):
        alloc = fair_share(0.0, np.array([5.0, 5.0]))
        assert np.allclose(alloc, 0)

    def test_empty_demands(self):
        assert fair_share(10.0, np.array([])).size == 0

    def test_zero_demands_get_zero(self):
        alloc = fair_share(10.0, np.array([0.0, 5.0]))
        assert alloc[0] == 0
        assert alloc[1] == 5

    def test_negative_demand_rejected(self):
        with pytest.raises(Exception):
            fair_share(10.0, np.array([-1.0]))

    @given(
        st.floats(min_value=0.0, max_value=1e6),
        st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=32),
    )
    def test_maxmin_invariants(self, capacity, demands):
        d = np.array(demands)
        alloc = fair_share(capacity, d)
        # never exceed demand, never exceed capacity
        assert np.all(alloc <= d + 1e-9)
        assert alloc.sum() <= capacity + 1e-6
        # work-conserving: either all demand met or capacity exhausted
        if d.sum() > capacity:
            assert alloc.sum() == pytest.approx(capacity, rel=1e-6, abs=1e-6)
        else:
            assert np.allclose(alloc, d)

    @given(
        st.floats(min_value=1.0, max_value=1e4),
        st.lists(st.floats(min_value=0.1, max_value=1e3), min_size=2, max_size=16),
    )
    def test_maxmin_fairness_property(self, capacity, demands):
        """No unsatisfied task receives less than any other task's allocation
        unless that other task is fully satisfied (the max-min criterion)."""
        d = np.array(demands)
        alloc = fair_share(capacity, d)
        unsat = alloc < d - 1e-9
        if unsat.any():
            floor = alloc[unsat].min()
            # every allocation above the floor belongs to a satisfied task
            above = alloc > floor + 1e-6
            assert np.all(~unsat[above])


class TestAllocateBandwidth:
    def test_per_tier_independence(self):
        caps = np.array([100.0, 50.0])
        demands = np.array([[80.0, 0.0], [80.0, 40.0]])
        out = allocate_bandwidth(caps, demands)
        assert np.allclose(out[:, 0], [50, 50])  # DRAM split evenly
        assert out[1, 1] == pytest.approx(40.0)  # tier 1 uncontended

    def test_multi_tier_aggregation_beats_single(self):
        """A task spreading demand over two tiers achieves more than one
        stuck on a contended single tier — the BW-flag payoff."""
        caps = np.array([100.0, 30.0])
        single = np.array([[60.0, 0.0], [60.0, 0.0], [60.0, 0.0]])
        spread = np.array([[40.0, 20.0], [60.0, 0.0], [60.0, 0.0]])
        a_single = allocate_bandwidth(caps, single).sum(axis=1)
        a_spread = allocate_bandwidth(caps, spread).sum(axis=1)
        assert a_spread[0] > a_single[0]

    def test_shape_validation(self):
        with pytest.raises(Exception):
            allocate_bandwidth(np.array([1.0]), np.array([[1.0, 2.0]]))
        with pytest.raises(Exception):
            allocate_bandwidth(np.array([1.0, 2.0]), np.array([1.0, 2.0]))

    def test_zero_demand_matrix(self):
        out = allocate_bandwidth(np.array([10.0, 10.0]), np.zeros((3, 2)))
        assert np.allclose(out, 0)
