"""WMS tests: DAG-ordered submission, failure propagation."""

import pytest

from repro.scheduler.job import JobState
from repro.util.errors import WorkflowError
from repro.util.units import MiB
from repro.wms.planner import WorkflowExecution, WorkflowManager
from repro.workflows.dag import Workflow, chain_workflow, diamond_workflow

from conftest import simple_task
from test_scheduler import make_sched


class TestWorkflowExecution:
    def test_chain_runs_in_order(self, engine, metrics):
        sched, _ = make_sched(engine, metrics)
        wf = chain_workflow("c", [simple_task(f"s{i}", base_time=1.0) for i in range(3)])
        ex = WorkflowExecution(wf, sched)
        ex.start()
        sched.run_to_completion()
        assert ex.complete and ex.succeeded
        starts = [metrics.get(f"s{i}").started_at for i in range(3)]
        assert starts == sorted(starts)
        ends = [metrics.get(f"s{i}").finished_at for i in range(3)]
        assert starts[1] >= ends[0] and starts[2] >= ends[1]

    def test_diamond_parallel_branches_overlap(self, engine, metrics):
        sched, _ = make_sched(engine, metrics)
        wf = diamond_workflow(
            "d",
            simple_task("pre", base_time=1.0),
            [simple_task("b1", base_time=4.0), simple_task("b2", base_time=4.0)],
            simple_task("post", base_time=1.0),
        )
        WorkflowManager(sched).submit(wf)
        sched.run_to_completion()
        b1, b2 = metrics.get("b1"), metrics.get("b2")
        # branches ran concurrently (overlap in time)
        assert b1.started_at < b2.finished_at and b2.started_at < b1.finished_at
        assert metrics.get("post").started_at >= max(b1.finished_at, b2.finished_at)

    def test_double_start_rejected(self, engine, metrics):
        sched, _ = make_sched(engine, metrics)
        wf = chain_workflow("c", [simple_task("a", base_time=1.0)])
        ex = WorkflowExecution(wf, sched)
        ex.start()
        with pytest.raises(WorkflowError):
            ex.start()

    def test_on_complete_callback(self, engine, metrics):
        sched, _ = make_sched(engine, metrics)
        wf = chain_workflow("c", [simple_task("a", base_time=1.0)])
        completed = []
        ex = WorkflowExecution(wf, sched, on_complete=lambda e: completed.append(e))
        ex.start()
        sched.run_to_completion()
        assert completed == [ex]

    def test_job_of(self, engine, metrics):
        sched, _ = make_sched(engine, metrics)
        wf = chain_workflow("c", [simple_task("a", base_time=1.0), simple_task("b", base_time=1.0)])
        ex = WorkflowExecution(wf, sched)
        ex.start()
        assert ex.job_of("a").name == "a"
        with pytest.raises(WorkflowError):
            ex.job_of("b")  # not yet submitted (depends on a)


class TestFailurePropagation:
    def test_failed_dependency_blocks_descendants(self, engine, metrics):
        sched, agents = make_sched(engine, metrics, n_nodes=1)
        from repro.memory.system import NodeMemorySystem
        from conftest import small_specs, CHUNK

        tiny = NodeMemorySystem(small_specs(dram=CHUNK, pmem=0, cxl=0, swap=CHUNK), "tiny")
        agents[0].memory = tiny
        agents[0].context.memory = tiny
        wf = Workflow("f")
        wf.add_task(simple_task("doomed", footprint=MiB(8)))
        wf.add_task(simple_task("child", footprint=MiB(8)), after=["doomed"])
        ex = WorkflowExecution(wf, sched)
        ex.start()
        sched.run_to_completion()
        assert ex.complete
        assert not ex.succeeded
        assert ex.job_of("doomed").state is JobState.FAILED
        with pytest.raises(WorkflowError):
            ex.job_of("child")  # never submitted


class TestWorkflowManager:
    def test_multiple_workflows_complete(self, engine, metrics):
        sched, _ = make_sched(engine, metrics)
        mgr = WorkflowManager(sched)
        for k in range(3):
            mgr.submit(
                chain_workflow(f"w{k}", [simple_task(f"w{k}t{i}", base_time=1.0) for i in range(2)])
            )
        mgr.run_to_completion()
        assert mgr.all_complete
        assert len(metrics.completed()) == 6
