"""Scheduler behavioural properties: work conservation, backfill limits,
queue introspection, and multi-workflow scale."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.scheduler.job import JobState
from repro.util.units import MiB

from conftest import simple_task
from test_scheduler import make_sched


class TestWorkConservation:
    def test_node_never_idles_while_jobs_fit(self, engine, metrics):
        """Whenever cores are free and a queued job fits, the scheduler
        starts it (verified by wall-clock packing of uniform jobs)."""
        sched, agents = make_sched(engine, metrics, n_nodes=1, cores=4)
        jobs = sched.submit_batch(
            [simple_task(f"t{i}", cores=1, base_time=2.0) for i in range(8)]
        )
        sched.run_to_completion()
        # 8 one-core 2s jobs on 4 cores: two waves -> total ≈ 2 waves
        starts = sorted(metrics.get(f"t{i}").started_at for i in range(8))
        first_wave_end = min(metrics.get(f"t{i}").finished_at for i in range(8))
        # the second wave begins as soon as the first job ends
        assert starts[4] <= first_wave_end + 1.0

    def test_no_core_overcommit_ever(self, engine, metrics):
        sched, agents = make_sched(engine, metrics, n_nodes=2, cores=4)
        sched.submit_batch(
            [simple_task(f"t{i}", cores=3, base_time=1.5) for i in range(6)]
        )
        while not sched.all_done:
            engine.step()
            for agent in agents:
                assert agent.cores_used <= agent.cores

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=10))
    def test_arbitrary_core_mixes_complete(self, core_counts):
        from repro.metrics.collector import MetricsRegistry
        from repro.sim.engine import SimulationEngine

        engine = SimulationEngine()
        metrics = MetricsRegistry()
        sched, _ = make_sched(engine, metrics, n_nodes=2, cores=4)
        sched.submit_batch(
            [
                simple_task(f"j{i}", cores=c, base_time=1.0)
                for i, c in enumerate(core_counts)
            ]
        )
        sched.run_to_completion()
        assert len(metrics.completed()) == len(core_counts)


class TestQueueSnapshot:
    def test_reports_waiting_jobs(self, engine, metrics):
        sched, _ = make_sched(engine, metrics, n_nodes=1, cores=2)
        sched.submit(simple_task("running", cores=2, base_time=5.0))
        sched.submit(simple_task("waiting", cores=2, base_time=1.0), priority=3)
        engine.run(until=2.0)
        snap = sched.queue_snapshot()
        assert len(snap) == 1
        assert snap[0]["name"] == "waiting"
        assert snap[0]["priority"] == 3
        assert snap[0]["waiting"] == pytest.approx(2.0)
        sched.run_to_completion()
        assert sched.queue_snapshot() == []


class TestBackfillSemantics:
    def test_backfill_disabled_is_strict_fifo(self, engine, metrics):
        from repro.containers.image import ContainerImage, ImageRegistry
        from repro.containers.runtime import ContainerRuntime, NetworkFabric
        from repro.memory.system import NodeMemorySystem
        from repro.policies.linux import LinuxSwapPolicy
        from repro.runtime.node_agent import NodeAgent
        from repro.scheduler.slurm import SlurmScheduler
        from conftest import CHUNK, small_specs
        from repro.util.units import GBps

        agents = [
            NodeAgent(
                engine,
                NodeMemorySystem(small_specs(dram=MiB(64), cxl=MiB(256)), "n0"),
                LinuxSwapPolicy(scan_noise=0.0),
                metrics,
                cores=4,
                chunk_size=CHUNK,
            )
        ]
        reg = ImageRegistry()
        reg.add(ContainerImage("default.sif", MiB(10)))
        containers = ContainerRuntime(
            engine, reg, NetworkFabric(engine, GBps(1.0)), 1, instantiation_time=0.01
        )
        sched = SlurmScheduler(engine, agents, containers, metrics, backfill=False)
        sched.submit(simple_task("head", cores=4, base_time=2.0))
        sched.submit(simple_task("blocked-big", cores=4, base_time=1.0))
        small = sched.submit(simple_task("small", cores=1, base_time=1.0))
        engine.run(until=1.0)
        # strict FIFO: the 1-core job must NOT jump the blocked 4-core head
        assert small.state is JobState.PENDING
        sched.run_to_completion()
        assert metrics.get("small").started_at >= metrics.get("blocked-big").started_at


class TestManyWorkflows:
    def test_fifty_workflows_through_wms(self, engine, metrics):
        from repro.wms.planner import WorkflowManager
        from repro.workflows.dag import chain_workflow

        sched, _ = make_sched(engine, metrics, n_nodes=4, cores=16)
        mgr = WorkflowManager(sched)
        for k in range(25):
            mgr.submit(
                chain_workflow(
                    f"wf{k}",
                    [simple_task(f"wf{k}t{i}", base_time=0.5) for i in range(2)],
                )
            )
        mgr.run_to_completion()
        assert len(metrics.completed()) == 50
