"""Determinism matrix: identical seeds produce bit-identical results
across every environment kind and every experiment harness surface."""

import pytest

from repro.envs.environments import EnvKind, make_environment
from repro.experiments import run_fig01
from repro.util.units import KiB, MiB
from repro.workflows.patterns import DriftingHotSpotPattern
from repro.workflows.task import WorkloadClass

from conftest import simple_task

CHUNK = KiB(128)
TINY = 1.0 / 512.0
MIX = {WorkloadClass.DM: 2, WorkloadClass.SC: 1}


def run_env(kind, seed=0):
    from repro.experiments.common import colocated_mix

    specs = colocated_mix(MIX, scale=TINY, seed=seed)
    total = sum(s.max_footprint for s in specs)
    env = make_environment(kind, dram_capacity=total // 3, chunk_size=CHUNK)
    metrics = env.run_batch(specs, max_time=1e7)
    fingerprint = tuple(
        (t.owner, t.started_at, t.finished_at, t.major_faults, t.minor_faults)
        for t in sorted(metrics.tasks(), key=lambda t: t.owner)
    )
    env.stop()
    return fingerprint


class TestEnvironmentDeterminism:
    @pytest.mark.parametrize("kind", list(EnvKind), ids=lambda k: k.name)
    def test_same_seed_bit_identical(self, kind):
        assert run_env(kind, seed=3) == run_env(kind, seed=3)

    def test_different_seed_differs(self):
        # jitter + submission order + policy noise all derive from the seed
        assert run_env(EnvKind.CBE, seed=1) != run_env(EnvKind.CBE, seed=2)


class TestHarnessDeterminism:
    def test_figure_harness_reproduces(self):
        a = run_fig01(scale=TINY, instances_per_class=1, chunk_size=CHUNK)
        b = run_fig01(scale=TINY, instances_per_class=1, chunk_size=CHUNK)
        assert a.series == b.series

    def test_resilience_fault_schedule_reproduces(self):
        # the chaos run draws victims, stragglers, and pull failures from
        # named RngFactory streams: same seed -> identical metrics
        from repro.experiments import run_resilience

        a = run_resilience(scale=TINY, instances=2, chunk_size=CHUNK)
        b = run_resilience(scale=TINY, instances=2, chunk_size=CHUNK)
        assert a.series == b.series

    def test_random_fault_schedule_reproduces(self):
        from repro.faults import FaultKind, FaultSchedule

        rates = {FaultKind.NODE_CRASH: 0.01, FaultKind.TASK_STRAGGLER: 0.05}
        a = FaultSchedule.random(horizon=500.0, n_nodes=4, seed=11, rates=rates)
        b = FaultSchedule.random(horizon=500.0, n_nodes=4, seed=11, rates=rates)
        assert [(f.kind, f.time, f.node) for f in a] == [
            (f.kind, f.time, f.node) for f in b
        ]
        c = FaultSchedule.random(horizon=500.0, n_nodes=4, seed=12, rates=rates)
        assert [(f.kind, f.time) for f in a] != [(f.kind, f.time) for f in c]


class TestDriftingPattern:
    def test_distribution(self):
        p = DriftingHotSpotPattern(width_frac=0.1, drift_per_phase=0.25)
        w = p.weights(100, 0)
        assert w.sum() == pytest.approx(1.0)
        assert (w >= 0).all()

    def test_hot_spot_moves(self):
        import numpy as np

        p = DriftingHotSpotPattern(width_frac=0.05, drift_per_phase=0.25)
        c0 = int(np.argmax(p.weights(100, 0)))
        c1 = int(np.argmax(p.weights(100, 1)))
        assert abs(c1 - c0) == pytest.approx(25, abs=2)

    def test_wraps_around(self):
        import numpy as np

        p = DriftingHotSpotPattern(width_frac=0.05, drift_per_phase=0.25)
        c4 = int(np.argmax(p.weights(100, 4)))  # full cycle
        c0 = int(np.argmax(p.weights(100, 0)))
        assert c4 == c0

    def test_concentration_scales_with_width(self):
        narrow = DriftingHotSpotPattern(width_frac=0.02).weights(200, 0)
        wide = DriftingHotSpotPattern(width_frac=0.30).weights(200, 0)
        assert narrow.max() > wide.max()

    def test_end_to_end_with_movement(self, engine, metrics):
        """A drifting hot spot over a tiered node: the manager keeps
        chasing it; the run must stay consistent and finish."""
        from dataclasses import replace

        from repro.core.manager import TieredMemoryManager
        from repro.memory.system import NodeMemorySystem
        from repro.runtime.node_agent import NodeAgent
        from conftest import small_specs

        spec = simple_task("drift", footprint=MiB(2), base_time=3.0, n_phases=4)
        spec = replace(
            spec,
            phases=tuple(
                replace(p, pattern=DriftingHotSpotPattern(0.1, 0.3))
                for p in spec.phases
            ),
        )
        specs = small_specs(dram=MiB(1))
        node = NodeMemorySystem(specs, "n")
        agent = NodeAgent(
            engine, node, TieredMemoryManager(specs), metrics,
            cores=4, chunk_size=KiB(64), validate_invariants=True,
        )
        agent.start_task(spec)
        engine.run(until=500.0)
        assert metrics.get("drift").done
