"""Bare-metal exclusive-allocation tests."""

import pytest

from repro.scheduler.job import JobState
from repro.util.units import MiB

from conftest import simple_task
from test_scheduler import make_sched


class TestExclusiveScheduling:
    def test_exclusive_job_holds_whole_node(self, engine, metrics):
        sched, agents = make_sched(engine, metrics, n_nodes=1, cores=4)
        job = sched.submit(
            simple_task("bare", cores=1, base_time=3.0), exclusive=True
        )
        small = sched.submit(simple_task("other", cores=1, base_time=1.0))
        engine.run(until=1.0)
        # exclusive job runs; the 1-core job cannot colocate
        assert job.state is JobState.RUNNING
        assert agents[0].cores_free == 0
        assert small.state is JobState.PENDING
        sched.run_to_completion()
        assert metrics.get("other").started_at >= metrics.get("bare").finished_at

    def test_exclusive_waits_for_idle_node(self, engine, metrics):
        sched, _ = make_sched(engine, metrics, n_nodes=1, cores=4)
        sched.submit(simple_task("running", cores=1, base_time=2.0))
        bare = sched.submit(simple_task("bare", cores=1, base_time=1.0), exclusive=True)
        engine.run(until=1.0)
        assert bare.state is JobState.PENDING  # node not idle
        sched.run_to_completion()
        assert bare.state is JobState.DONE
        assert metrics.get("bare").started_at >= metrics.get("running").finished_at

    def test_exclusive_skips_container_startup(self, engine, metrics):
        sched, _ = make_sched(engine, metrics, n_nodes=1)
        sched.submit(simple_task("bare", base_time=1.0), exclusive=True)
        sched.run_to_completion()
        tm = metrics.get("bare")
        assert tm.startup_time == 0.0
        assert sched.containers.network_pulls == 0

    def test_cores_released_after_exclusive_finish(self, engine, metrics):
        sched, agents = make_sched(engine, metrics, n_nodes=1, cores=4)
        sched.submit(simple_task("bare", cores=2, base_time=1.0), exclusive=True)
        sched.run_to_completion()
        assert agents[0].cores_used == 0

    def test_mixed_batch_completes(self, engine, metrics):
        sched, _ = make_sched(engine, metrics, n_nodes=2, cores=4)
        sched.submit(simple_task("bm0", base_time=1.0), exclusive=True)
        sched.submit_batch(
            [simple_task(f"c{i}", base_time=1.0) for i in range(4)]
        )
        sched.submit(simple_task("bm1", base_time=1.0), exclusive=True)
        sched.run_to_completion()
        assert len(metrics.completed()) == 6

    def test_environment_run_batch_exclusive(self):
        from repro.envs.environments import EnvKind, make_environment
        from repro.util.units import KiB

        env = make_environment(
            EnvKind.IMME, n_nodes=2, dram_capacity=MiB(32),
            chunk_size=KiB(64), cores_per_node=4,
        )
        specs = [simple_task(f"t{i}", footprint=MiB(1), base_time=1.0) for i in range(4)]
        metrics = env.run_batch(specs, exclusive=True)
        assert len(metrics.completed()) == 4
        # never more than one job per node at a time: no two jobs on the
        # same node may overlap in time
        by_node = {}
        for s in specs:
            job = next(j for j in env.scheduler.jobs.values() if j.name == s.name)
            by_node.setdefault(job.node_index, []).append(metrics.get(s.name))
        for tasks in by_node.values():
            tasks.sort(key=lambda t: t.started_at)
            for a, b in zip(tasks, tasks[1:]):
                assert b.started_at >= a.finished_at - 1e-9
        env.stop()
