"""The unified telemetry layer: core context, merge determinism under the
fork pool, exporters, the ``obs`` CLI, and the latency-percentile
aggregates it surfaces."""

import json

import pytest

from repro import obs
from repro.metrics.collector import MetricsRegistry
from repro.obs.exporters import write_run_dir
from repro.obs.telemetry import add_label, metric_key, split_label
from repro.parallel import map_ordered, supports_fork


# --------------------------------------------------------------------------- #
# metric keys
# --------------------------------------------------------------------------- #

class TestMetricKeys:
    def test_plain_name(self):
        assert metric_key("a.b", {}) == "a.b"
        assert split_label("a.b") == ("a.b", {})

    def test_labels_sorted_and_round_trip(self):
        key = metric_key("m", {"z": 1, "a": "x"})
        assert key == "m{a=x,z=1}"
        assert split_label(key) == ("m", {"a": "x", "z": "1"})

    def test_add_label_scopes(self):
        assert add_label("m", exp="fig05") == "m{exp=fig05}"
        assert add_label("m{a=1}", exp="fig05") == "m{a=1,exp=fig05}"


# --------------------------------------------------------------------------- #
# disabled path
# --------------------------------------------------------------------------- #

class TestNullPath:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.active() is obs.NULL

    def test_null_emissions_are_noops(self):
        obs.counter("x", 3, label="v")
        obs.gauge("g", 1.0)
        obs.observe("h", 2.0)
        obs.event(1.0, "cat", "subj", k="v")
        with obs.span("s", attr=1) as sp:
            sp.set(more=2)
        assert obs.active().snapshot() is None

    def test_null_span_is_shared_singleton(self):
        assert obs.span("a") is obs.span("b")


# --------------------------------------------------------------------------- #
# the live context
# --------------------------------------------------------------------------- #

class TestTelemetry:
    def test_counters_sum_by_label(self):
        tel = obs.Telemetry("t")
        with obs.session(tel):
            obs.counter("hits")
            obs.counter("hits", 2)
            obs.counter("hits", 5, tier="dram")
        rec = tel.snapshot()
        assert rec.counters == {"hits": 3, "hits{tier=dram}": 5}

    def test_gauges_overwrite_histograms_accumulate(self):
        tel = obs.Telemetry("t")
        with obs.session(tel):
            obs.gauge("temp", 1.0)
            obs.gauge("temp", 2.0)
            obs.observe("lat", 1.0)
            obs.observe("lat", 3.0)
        rec = tel.snapshot()
        assert rec.gauges == {"temp": 2.0}
        assert rec.histograms == {"lat": [1.0, 3.0]}

    def test_session_restores_previous_context(self):
        tel = obs.Telemetry("t")
        with obs.session(tel):
            assert obs.active() is tel
            inner = obs.Telemetry("inner")
            with obs.session(inner):
                assert obs.active() is inner
            assert obs.active() is tel
        assert obs.active() is obs.NULL

    def test_span_nesting_records_parents(self):
        tel = obs.Telemetry("t")
        with obs.session(tel):
            with obs.span("outer"):
                with obs.span("inner", cell="a") as sp:
                    sp.set(extra=1)
                with obs.span("inner2"):
                    pass
        rec = tel.snapshot()
        assert rec.span_tree_shape() == [
            ("inner", "outer"), ("inner2", "outer"), ("outer", None),
        ]
        inner = next(s for s in rec.spans if s.name == "inner")
        assert inner.attrs == {"cell": "a", "extra": 1}
        assert inner.duration >= 0.0

    def test_events_carry_sim_time(self):
        tel = obs.Telemetry("t")
        with obs.session(tel):
            obs.event(12.5, "fault", "node-crash", node=3)
        rec = tel.snapshot()
        assert rec.events == [{"t": 12.5, "cat": "fault", "subj": "node-crash", "node": 3}]

    def test_snapshot_is_a_copy(self):
        tel = obs.Telemetry("t")
        with obs.session(tel):
            obs.counter("c")
        rec = tel.snapshot()
        with obs.session(tel):
            obs.counter("c")
        assert rec.counters["c"] == 1
        assert tel.snapshot().counters["c"] == 2

    def test_bounds_drop_and_count(self):
        tel = obs.Telemetry("t", max_spans=1, max_events=2, max_observations=1)
        with obs.session(tel):
            for i in range(3):
                with obs.span(f"s{i}"):
                    pass
                obs.event(float(i), "c", "s")
                obs.observe("h", float(i))
        rec = tel.snapshot()
        assert len(rec.spans) == 1 and rec.dropped_spans == 2
        assert len(rec.events) == 2 and rec.dropped_events == 1
        assert rec.histograms["h"] == [0.0] and rec.dropped_observations == 2

    def test_record_json_round_trip(self):
        tel = obs.Telemetry("t", meta={"jobs": 2})
        with obs.session(tel):
            with obs.span("outer", k="v"):
                obs.counter("c", 2, a=1)
            obs.event(1.0, "cat", "s")
        rec = tel.snapshot()
        back = obs.TelemetryRecord.from_dict(json.loads(json.dumps(rec.to_dict())))
        assert back.counters == rec.counters
        assert back.span_tree_shape() == rec.span_tree_shape()
        assert back.events == rec.events
        assert back.meta == {"jobs": 2}


# --------------------------------------------------------------------------- #
# merge
# --------------------------------------------------------------------------- #

def _child_record(run_id="child", worker=""):
    tel = obs.Telemetry(run_id, meta={"worker": worker} if worker else None)
    with obs.session(tel):
        with obs.span("work"):
            obs.counter("done", policy="tpp")
            obs.event(1.0, "task", "t0")
        obs.observe("lat", 2.0)
    return tel.snapshot()


class TestMerge:
    def test_counters_sum_and_scope_labels(self):
        parent = obs.Telemetry("parent")
        parent.merge(_child_record(), scope="fig05")
        parent.merge(_child_record(), scope="fig05")
        parent.merge(_child_record(), scope="fig06")
        rec = parent.snapshot()
        assert rec.counters == {
            "done{exp=fig05,policy=tpp}": 2,
            "done{exp=fig06,policy=tpp}": 1,
        }
        assert rec.histograms["lat"] == [2.0, 2.0, 2.0]

    def test_roots_reparent_under_open_span(self):
        parent = obs.Telemetry("parent")
        with obs.session(parent):
            with obs.span("sweep"):
                parent.merge(_child_record())
        shape = parent.snapshot().span_tree_shape()
        assert ("work", "sweep") in shape

    def test_worker_annotation(self):
        parent = obs.Telemetry("parent")
        parent.merge(_child_record(worker="pid42"))
        rec = parent.snapshot()
        assert rec.workers == ["pid42"]
        assert rec.spans[0].worker == "pid42"
        assert rec.events[0]["worker"] == "pid42"

    def test_merged_span_ids_stay_unique(self):
        parent = obs.Telemetry("parent")
        parent.merge(_child_record())
        parent.merge(_child_record())
        ids = [s.span_id for s in parent.snapshot().spans]
        assert len(ids) == len(set(ids))


# --------------------------------------------------------------------------- #
# merge under the fork pool == sequential (satellite #3 of the tentpole)
# --------------------------------------------------------------------------- #

def _emitting_cell(i):
    """Top-level so the pool can run it; emits one of everything."""
    with obs.span("cell", index=i):
        obs.counter("cells.run")
        obs.counter("cells.weighted", i, parity=i % 2)
        obs.observe("cell_value", float(i))
        obs.event(float(i), "cell", f"c{i}", index=i)
    return i * i


def _run_emitting_sweep(jobs):
    tel = obs.Telemetry("sweep-test")
    with obs.session(tel), obs.span("sweep"):
        results = map_ordered(_emitting_cell, list(range(8)), jobs=jobs)
    return results, tel.snapshot()


@pytest.mark.skipif(not supports_fork(), reason="no fork on this platform")
class TestMergeUnderFork:
    def test_forked_sweep_matches_sequential(self):
        seq_results, seq = _run_emitting_sweep(jobs=1)
        par_results, par = _run_emitting_sweep(jobs=3)
        assert par_results == seq_results == [i * i for i in range(8)]
        assert par.counters == seq.counters
        assert par.histograms == seq.histograms  # merged in input order
        assert par.span_tree_shape() == seq.span_tree_shape()
        strip = lambda evs: [{k: v for k, v in e.items() if k != "worker"} for e in evs]
        assert strip(par.events) == strip(seq.events)
        assert par.workers and not seq.workers

    def test_disabled_sweep_returns_bare_results(self):
        assert not obs.enabled()
        assert map_ordered(_emitting_cell, [1, 2, 3], jobs=2) == [1, 4, 9]


# --------------------------------------------------------------------------- #
# exporters
# --------------------------------------------------------------------------- #

def _sample_record():
    tel = obs.Telemetry("sample", meta={"jobs": 1})
    with obs.session(tel):
        with obs.span("sim.run", start=0.0):
            obs.counter("sim.events_fired", 10)
            obs.event(3.5, "fault", "node-crash", node=1)
        obs.observe("execution_time", 4.0)
        obs.observe("execution_time", 8.0)
        obs.gauge("env.makespan_s", 12.0)
    return tel.snapshot()


class TestExporters:
    def test_chrome_trace_is_valid(self):
        doc = obs.to_chrome_trace(_sample_record())
        assert obs.validate_chrome_trace(doc) == []
        phases = {ev["ph"] for ev in doc["traceEvents"]}
        assert {"X", "M", "C", "i"} <= phases

    def test_sim_events_live_on_their_own_pid(self):
        doc = obs.to_chrome_trace(_sample_record())
        instants = [ev for ev in doc["traceEvents"] if ev["ph"] == "i"]
        spans = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert instants[0]["ts"] == pytest.approx(3.5e6)
        assert {ev["pid"] for ev in instants}.isdisjoint({ev["pid"] for ev in spans})

    def test_validator_flags_malformed_documents(self):
        assert obs.validate_chrome_trace([]) == ["top level is not an object"]
        assert obs.validate_chrome_trace({}) == ["traceEvents missing or not a list"]
        problems = obs.validate_chrome_trace({"traceEvents": [{"ph": "X", "name": "a"}]})
        assert any("missing" in p for p in problems)

    def test_run_dir_round_trip(self, tmp_path):
        rec = _sample_record()
        paths = write_run_dir(rec, str(tmp_path / "run"))
        back = obs.load_run_dir(str(tmp_path / "run"))
        assert back.counters == rec.counters
        assert back.span_tree_shape() == rec.span_tree_shape()
        lines = [json.loads(l) for l in open(paths["events"]) if l.strip()]
        assert {l["kind"] for l in lines} == {"event", "span"}
        csv = open(paths["metrics"]).read()
        assert csv.startswith("kind,name,labels,value")
        assert "histogram_p95,execution_time" in csv
        assert obs.validate_chrome_trace(json.load(open(paths["trace"]))) == []

    def test_load_accepts_run_json_path(self, tmp_path):
        paths = write_run_dir(_sample_record(), str(tmp_path))
        assert obs.load_run_dir(paths["run"]).run_id == "sample"


# --------------------------------------------------------------------------- #
# the CLI
# --------------------------------------------------------------------------- #

class TestCli:
    @pytest.fixture
    def run_dir(self, tmp_path):
        parent = obs.Telemetry("cli-test", meta={"jobs": 2})
        parent.merge(_child_record(), scope="fig05")
        write_run_dir(parent.snapshot(), str(tmp_path))
        return str(tmp_path)

    def test_summary(self, run_dir, capsys):
        from repro.obs.cli import main

        assert main(["summary", run_dir]) == 0
        out = capsys.readouterr().out
        assert "run 'cli-test'" in out
        assert "fig05" in out and "done" in out
        assert "work" in out  # span rollup

    def test_trace_check(self, run_dir, capsys):
        from repro.obs.cli import main

        assert main(["trace", run_dir, "--check"]) == 0
        assert "trace OK" in capsys.readouterr().out

    def test_top(self, run_dir, capsys):
        from repro.obs.cli import main

        assert main(["top", run_dir, "-n", "3"]) == 0
        assert "work" in capsys.readouterr().out

    def test_missing_run_dir_is_a_clean_error(self, tmp_path):
        from repro.obs.cli import main

        with pytest.raises(SystemExit, match="run.json"):
            main(["trace", str(tmp_path / "nope")])


# --------------------------------------------------------------------------- #
# latency percentiles (MetricsRegistry satellite)
# --------------------------------------------------------------------------- #

def _registry_with_tasks():
    reg = MetricsRegistry()
    for i in range(10):
        tm = reg.task(f"t{i}", wclass="DL" if i % 2 else "SC")
        tm.submitted_at = 0.0
        tm.scheduled_at = float(i)          # queue_wait = i
        tm.container_ready_at = float(i) + 1.0  # startup_time = 1
        tm.started_at = tm.container_ready_at
        tm.finished_at = tm.started_at + 10.0 + i  # execution_time = 10 + i
    return reg


class TestLatencyPercentiles:
    def test_percentiles_per_class_and_overall(self):
        reg = _registry_with_tasks()
        p50, p95, p99 = reg.percentiles("startup_time")
        assert p50 == p95 == p99 == 1.0
        all_p50, _, all_p99 = reg.percentiles("queue_wait")
        assert all_p50 == 4.5 and all_p99 > all_p50
        dl_p50 = reg.percentiles("execution_time", "DL")[0]
        sc_p50 = reg.percentiles("execution_time", "SC")[0]
        assert dl_p50 != sc_p50

    def test_unknown_metric_rejected(self):
        with pytest.raises(Exception, match="unknown latency metric"):
            _registry_with_tasks().percentiles("nope")

    def test_percentile_rows_include_all_rollup(self):
        reg = _registry_with_tasks()
        rows = reg.percentile_rows()
        classes = {r[0] for r in rows}
        assert classes == {"DL", "SC", "ALL"}
        assert len(rows) == 3 * len(MetricsRegistry.LATENCY_METRICS)

    def test_to_table_renders(self):
        table = _registry_with_tasks().to_table()
        assert "per-class latency percentiles" in table
        assert "execution_time" in table

    def test_scenario_outcome_percentile_lookup(self):
        from repro.scenarios.build import ScenarioOutcome

        out = ScenarioOutcome(
            scenario="s", digest="d", seed=0, makespan=1.0, completed=1,
            failed=0, mean_startup=0.0,
            latency_percentiles=(("execution_time", 1.0, 2.0, 3.0),),
        )
        assert out.percentile("execution_time", 95) == 2.0
        assert out.percentile("queue_wait", 50) == 0.0  # pre-1.4 outcomes


# --------------------------------------------------------------------------- #
# nearest-rank percentile helper (shared by exporters and the CLI)
# --------------------------------------------------------------------------- #

class TestPercentileHelper:
    def test_empty_is_zero(self):
        from repro.obs.exporters import percentile

        assert percentile([], 50) == 0.0
        assert percentile([], 99) == 0.0

    def test_singleton_is_the_value(self):
        from repro.obs.exporters import percentile

        assert percentile([7.5], 0) == 7.5
        assert percentile([7.5], 50) == 7.5
        assert percentile([7.5], 100) == 7.5

    def test_nearest_rank(self):
        from repro.obs.exporters import percentile

        values = [5.0, 1.0, 3.0, 2.0, 4.0]  # sorts before ranking
        assert percentile(values, 0) == 1.0
        assert percentile(values, 50) == 3.0
        assert percentile(values, 75) == 4.0
        assert percentile(values, 100) == 5.0


# --------------------------------------------------------------------------- #
# insight plane: exporters, counter tracks, and fork-merge parity
# --------------------------------------------------------------------------- #

def _insight_record():
    import numpy as np
    from repro.obs import insight as _insight

    ins = _insight.Insight("obs-insight")
    for i in range(4):
        with ins.cause("reactive"):
            ins.migration(float(i), "n0", f"t{i}", 2, 0, 1, 4096)
        ins.sample(
            float(i), "n0",
            np.array([100 + i, 50, 25, 0], dtype=np.int64),
            np.array([900 - i, 950, 975, 1000], dtype=np.int64),
            0.1 * i, [0.1, 0.5, 0.9],
        )
    return ins


class TestInsightExport:
    def test_run_dir_includes_insight_artifacts(self, tmp_path):
        from repro.obs.exporters import load_insight_record

        ins = _insight_record()
        paths = write_run_dir(_sample_record(), str(tmp_path), ins.snapshot())
        assert "ledger" in paths and "insight" in paths
        lines = [l for l in open(paths["ledger"]) if l.strip()]
        header = json.loads(lines[0])
        assert header["entries"] == 4 == len(lines) - 1
        back = load_insight_record(str(tmp_path))
        assert back == ins.snapshot()

    def test_counter_tracks_are_valid_and_monotonic(self):
        doc = obs.to_chrome_trace(_sample_record(), _insight_record().snapshot())
        assert obs.validate_chrome_trace(doc) == []
        counters = [ev for ev in doc["traceEvents"] if ev["ph"] == "C"]
        names = {ev["name"] for ev in counters}
        assert {"tier.occupancy.n0", "tier.stall.n0", "tier.temp.n0"} <= names

    def test_validator_rejects_non_monotonic_counters(self):
        doc = obs.to_chrome_trace(_sample_record(), _insight_record().snapshot())
        counters = [ev for ev in doc["traceEvents"] if ev["ph"] == "C"]
        counters[-1]["ts"] = -1.0  # out of order within its track
        problems = obs.validate_chrome_trace(doc)
        assert any("monotonic" in p for p in problems)

    def test_validator_rejects_malformed_counter_args(self):
        doc = obs.to_chrome_trace(_sample_record(), _insight_record().snapshot())
        counters = [ev for ev in doc["traceEvents"] if ev["ph"] == "C"]
        counters[0]["args"] = {}
        counters[1]["args"] = {"v": "not-a-number"}
        problems = obs.validate_chrome_trace(doc)
        assert any("non-empty object" in p for p in problems)
        assert any("not numeric" in p for p in problems)

    def test_metrics_table_gains_insight_rows(self):
        from repro.obs.exporters import metrics_table

        csv = metrics_table(_sample_record(), _insight_record().snapshot())
        kinds = {line.split(",", 1)[0] for line in csv.splitlines()[1:]}
        assert {"ledger_entries", "ledger_bytes", "series_count"} <= kinds


def _insight_cell(i):
    """Top-level so the pool can pickle it; one migration + one sample."""
    import numpy as np
    from repro.obs import insight as _insight

    ins = _insight.active()
    with _insight.cause("reactive"):
        ins.migration(float(i), f"n{i % 2}", f"t{i}", 2, 0, 1, 1024)
    ins.sample(
        float(i), f"n{i % 2}",
        np.array([i, 0, 0, 0], dtype=np.int64),
        np.array([100, 100, 100, 100], dtype=np.int64),
        0.0, [0.1, 0.5, 0.9],
    )
    return i * i


def _run_insight_sweep(jobs):
    from repro.obs import insight as _insight

    ins = _insight.Insight("sweep-insight")
    with _insight.session(ins):
        results = map_ordered(_insight_cell, list(range(8)), jobs=jobs)
    return results, ins.snapshot()


@pytest.mark.skipif(not supports_fork(), reason="no fork on this platform")
class TestInsightMergeUnderFork:
    def test_forked_sweep_matches_sequential(self):
        seq_results, seq = _run_insight_sweep(jobs=1)
        par_results, par = _run_insight_sweep(jobs=3)
        assert par_results == seq_results == [i * i for i in range(8)]
        assert par.totals == seq.totals
        assert par.entries == seq.entries  # merged in input order
        assert sorted(par.series) == sorted(seq.series) == ["n0", "n1"]
        for node in seq.series:
            for name, arr in seq.series[node].items():
                import numpy as np

                assert np.array_equal(par.series[node][name], arr)
        assert par.samples_seen == seq.samples_seen
        assert par.workers and not seq.workers

    def test_disabled_sweep_returns_bare_results(self):
        from repro.obs import insight as _insight

        assert not _insight.enabled()
        assert map_ordered(_insight_cell, [1, 2, 3], jobs=2) == [1, 4, 9]
