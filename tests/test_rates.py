"""Progress-rate model tests: latency/bandwidth/fault blending."""

import numpy as np
import pytest

from repro.memory.pageset import PageSet
from repro.memory.tiers import CXL, DRAM, PMEM, SWAP
from repro.runtime.rates import (
    RateModelConfig,
    phase_slowdown,
    tier_access_profile,
    tier_demand,
)
from repro.util.units import GBps, KiB
from repro.workflows.patterns import UniformPattern
from repro.workflows.task import TaskPhase

from conftest import CHUNK, small_specs

SPECS = small_specs()


def ps_with_weights(tiers, weights):
    ps = PageSet("t", len(tiers) * CHUNK, CHUNK)
    for i, t in enumerate(tiers):
        ps.tier[i] = int(t)
    ps.access_weight[: len(weights)] = np.asarray(weights, dtype=np.float32)
    return ps


def phase(compute=0.4, lat=0.4, bw=0.2, demand=GBps(1.0)):
    return TaskPhase(
        name="p",
        base_time=10.0,
        compute_frac=compute,
        lat_frac=lat,
        bw_frac=bw,
        demand_bandwidth=demand,
        pattern=UniformPattern(),
    )


class TestTierAccessProfile:
    def test_normalised_over_mapped(self):
        ps = ps_with_weights([DRAM, CXL], [0.3, 0.1])
        w, shadow = tier_access_profile(ps)
        assert w[int(DRAM)] == pytest.approx(0.75)
        assert w[int(CXL)] == pytest.approx(0.25)
        assert shadow == 0.0

    def test_shadowed_weight_separated(self):
        ps = ps_with_weights([DRAM, SWAP], [0.5, 0.5])
        ps.in_page_cache[1] = True
        w, shadow = tier_access_profile(ps)
        assert shadow == pytest.approx(0.5)
        assert w[int(SWAP)] == 0.0

    def test_idle_pageset(self):
        ps = ps_with_weights([DRAM], [0.0])
        w, shadow = tier_access_profile(ps)
        assert w.sum() == 0 and shadow == 0


class TestTierDemand:
    def test_demand_follows_weights(self):
        ps = ps_with_weights([DRAM, CXL], [0.75, 0.25])
        d = tier_demand(ps, GBps(4.0))
        assert d[int(DRAM)] == pytest.approx(GBps(3.0))
        assert d[int(CXL)] == pytest.approx(GBps(1.0))

    def test_shadowed_demand_charged_to_dram(self):
        ps = ps_with_weights([SWAP], [1.0])
        ps.in_page_cache[0] = True
        d = tier_demand(ps, GBps(2.0))
        assert d[int(DRAM)] == pytest.approx(GBps(2.0))
        assert d[int(SWAP)] == 0.0


class TestPhaseSlowdown:
    def test_all_dram_no_contention_is_unity(self):
        ps = ps_with_weights([DRAM], [1.0])
        s = phase_slowdown(phase(), ps, SPECS, achieved_bandwidth=GBps(1.0))
        assert s == pytest.approx(1.0)

    def test_cxl_latency_penalty(self):
        dram = ps_with_weights([DRAM], [1.0])
        cxl = ps_with_weights([CXL], [1.0])
        p = phase(compute=0.3, lat=0.7, bw=0.0, demand=0)
        s_dram = phase_slowdown(p, dram, SPECS, GBps(1))
        s_cxl = phase_slowdown(p, cxl, SPECS, GBps(1))
        assert s_cxl > s_dram
        # 140ns vs 80ns with lat_frac .7: 0.3 + 0.7*1.75
        assert s_cxl == pytest.approx(0.3 + 0.7 * 1.75, rel=1e-3)

    def test_swap_residency_dominates(self):
        swap = ps_with_weights([SWAP], [1.0])
        s = phase_slowdown(phase(), swap, SPECS, GBps(1))
        assert s > 50  # amortised major-fault latency is catastrophic

    def test_shadowed_swap_is_cheap(self):
        swap = ps_with_weights([SWAP], [1.0])
        swap.in_page_cache[0] = True
        s = phase_slowdown(phase(), swap, SPECS, GBps(1))
        assert s < 3

    def test_bandwidth_starvation(self):
        ps = ps_with_weights([DRAM], [1.0])
        p = phase(compute=0.3, lat=0.0, bw=0.7, demand=GBps(10.0))
        s_full = phase_slowdown(p, ps, SPECS, achieved_bandwidth=GBps(10.0))
        s_half = phase_slowdown(p, ps, SPECS, achieved_bandwidth=GBps(5.0))
        assert s_full == pytest.approx(1.0)
        assert s_half == pytest.approx(0.3 + 0.7 * 2.0)

    def test_surplus_bandwidth_never_speeds_up(self):
        ps = ps_with_weights([DRAM], [1.0])
        p = phase(compute=0.3, lat=0.0, bw=0.7, demand=GBps(1.0))
        s = phase_slowdown(p, ps, SPECS, achieved_bandwidth=GBps(100.0))
        assert s == pytest.approx(1.0)

    def test_migration_penalty_added_and_capped(self):
        ps = ps_with_weights([DRAM], [1.0])
        cfg = RateModelConfig(migration_overhead_cap=0.08)
        s0 = phase_slowdown(phase(), ps, SPECS, GBps(1), config=cfg)
        s1 = phase_slowdown(phase(), ps, SPECS, GBps(1), migration_penalty=0.05, config=cfg)
        s2 = phase_slowdown(phase(), ps, SPECS, GBps(1), migration_penalty=5.0, config=cfg)
        assert s1 == pytest.approx(s0 + 0.05)
        assert s2 == pytest.approx(s0 + 0.08)

    def test_idle_weights_treated_as_dram(self):
        ps = ps_with_weights([DRAM], [0.0])
        s = phase_slowdown(phase(demand=0), ps, SPECS, 0.0)
        assert s == pytest.approx(1.0)

    def test_slowdown_clamped(self):
        swap = ps_with_weights([SWAP], [1.0])
        cfg = RateModelConfig(max_slowdown=10.0)
        p = phase(compute=0.0, lat=1.0, bw=0.0, demand=0)
        assert phase_slowdown(p, swap, SPECS, GBps(1), config=cfg) == 10.0
