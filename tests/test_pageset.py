"""PageSet metadata tests, including hypothesis property checks."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.memory.pageset import NO_REGION, UNMAPPED, PageSet
from repro.memory.tiers import CXL, DRAM, NUM_TIERS, PMEM, SWAP
from repro.util.units import KiB

CHUNK = KiB(64)


def ps_of(n_chunks: int, owner="t") -> PageSet:
    return PageSet(owner, n_chunks * CHUNK, CHUNK)


class TestConstruction:
    def test_chunk_count_rounds_up(self):
        ps = PageSet("t", CHUNK + 1, CHUNK)
        assert ps.n_chunks == 2
        assert ps.total_bytes == 2 * CHUNK

    def test_initially_unmapped(self):
        ps = ps_of(8)
        assert not ps.mapped_mask.any()
        assert ps.mapped_bytes == 0
        assert (ps.region == NO_REGION).all()

    def test_zero_bytes_rejected(self):
        with pytest.raises(Exception):
            PageSet("t", 0, CHUNK)


class TestPlacementMetadata:
    def test_assign_and_counts(self):
        ps = ps_of(10)
        ps.assign(np.arange(4), DRAM)
        ps.assign(np.arange(4, 7), CXL)
        counts = ps.counts_by_tier()
        assert counts[int(DRAM)] == 4
        assert counts[int(CXL)] == 3
        assert counts.sum() == 7
        assert ps.bytes_in(DRAM) == 4 * CHUNK

    def test_chunks_in(self):
        ps = ps_of(6)
        ps.assign(np.array([1, 3, 5]), PMEM)
        assert list(ps.chunks_in(PMEM)) == [1, 3, 5]

    def test_unmap_subset(self):
        ps = ps_of(4)
        ps.assign(np.arange(4), DRAM)
        ps.pinned[:2] = True
        ps.unmap(np.array([0, 1]))
        assert ps.counts_by_tier()[int(DRAM)] == 2
        assert not ps.pinned[:2].any()

    def test_unmap_all(self):
        ps = ps_of(4)
        ps.assign(np.arange(4), SWAP)
        ps.in_page_cache[:] = True
        ps.unmap()
        assert not ps.mapped_mask.any()
        assert not ps.in_page_cache.any()

    def test_bytes_by_tier_matches_counts(self):
        ps = ps_of(5)
        ps.assign(np.arange(2), DRAM)
        assert (ps.bytes_by_tier() == ps.counts_by_tier() * CHUNK).all()


class TestVictimSelection:
    def test_coldest_orders_by_temperature(self):
        ps = ps_of(5)
        ps.assign(np.arange(5), DRAM)
        ps.temperature[:] = [5, 1, 3, 0, 2]
        assert list(ps.coldest_in(DRAM, 3)) == [3, 1, 4]

    def test_coldest_skips_pinned(self):
        ps = ps_of(4)
        ps.assign(np.arange(4), DRAM)
        ps.pinned[0] = True
        ps.temperature[:] = [0, 1, 2, 3]
        assert 0 not in ps.coldest_in(DRAM, 4)
        assert 0 in ps.coldest_in(DRAM, 4, include_pinned=True)

    def test_coldest_excludes_regions(self):
        ps = ps_of(4)
        ps.assign(np.arange(4), DRAM)
        ps.region[:2] = 7
        got = ps.coldest_in(DRAM, 4, exclude_regions=[7])
        assert set(got) == {2, 3}

    def test_hottest(self):
        ps = ps_of(4)
        ps.assign(np.arange(4), CXL)
        ps.temperature[:] = [0, 9, 4, 7]
        assert list(ps.hottest_in(CXL, 2)) == [1, 3]

    def test_empty_tier_returns_empty(self):
        ps = ps_of(4)
        assert ps.coldest_in(DRAM, 3).size == 0
        assert ps.hottest_in(SWAP, 3).size == 0


class TestAccessWeights:
    def test_set_and_clear(self):
        ps = ps_of(4)
        w = np.array([0.5, 0.5, 0, 0], dtype=np.float32)
        ps.set_access_weights(w)
        assert ps.access_weight.sum() == pytest.approx(1.0)
        ps.clear_access_weights()
        assert ps.access_weight.sum() == 0

    def test_wrong_shape_rejected(self):
        ps = ps_of(4)
        with pytest.raises(Exception):
            ps.set_access_weights(np.ones(3, dtype=np.float32))

    def test_negative_weights_rejected(self):
        ps = ps_of(2)
        with pytest.raises(Exception):
            ps.set_access_weights(np.array([-0.1, 1.1], dtype=np.float32))

    def test_weight_by_tier_normalised(self):
        ps = ps_of(4)
        ps.assign(np.array([0, 1]), DRAM)
        ps.assign(np.array([2]), CXL)
        ps.set_access_weights(np.array([0.3, 0.3, 0.4, 0.5], dtype=np.float32))
        w = ps.weight_by_tier()
        # chunk 3 is unmapped: its weight is excluded from the profile
        assert w.sum() == pytest.approx(1.0)
        assert w[int(DRAM)] == pytest.approx(0.6)
        assert w[int(CXL)] == pytest.approx(0.4)

    def test_weight_by_tier_idle(self):
        ps = ps_of(4)
        ps.assign(np.arange(4), DRAM)
        assert ps.weight_by_tier().sum() == 0


class TestProperties:
    @given(st.integers(min_value=1, max_value=64), st.data())
    def test_counts_always_sum_to_mapped(self, n, data):
        ps = ps_of(n)
        tiers = data.draw(
            st.lists(
                st.sampled_from([UNMAPPED, 0, 1, 2, 3]), min_size=n, max_size=n
            )
        )
        ps.tier = np.array(tiers, dtype=np.int8)
        mapped = int(np.count_nonzero(ps.tier != UNMAPPED))
        assert int(ps.counts_by_tier().sum()) == mapped
        assert ps.mapped_bytes == mapped * CHUNK

    @given(st.integers(min_value=1, max_value=32), st.integers(min_value=0, max_value=40))
    def test_coldest_never_exceeds_request(self, n, k):
        ps = ps_of(n)
        ps.assign(np.arange(n), DRAM)
        got = ps.coldest_in(DRAM, k)
        assert got.size <= min(n, k)
        assert len(set(got.tolist())) == got.size  # no duplicates


class TestStableTopK:
    """coldest_in/hottest_in use argpartition top-k; these pin the results
    to the reference full stable argsort, especially under temperature ties."""

    @staticmethod
    def reference_coldest(ps, tier, k):
        cand = ps.chunks_in(tier)
        cand = cand[~ps.pinned[cand]]
        order = np.argsort(ps.temperature[cand], kind="stable")
        return cand[order[:k]]

    @staticmethod
    def reference_hottest(ps, tier, k):
        cand = ps.chunks_in(tier)
        order = np.argsort(-ps.temperature[cand], kind="stable")
        return cand[order[:k]]

    def test_matches_argsort_random_temps(self):
        rng = np.random.default_rng(0)
        ps = ps_of(257)
        ps.assign(np.arange(257), DRAM)
        ps.temperature = rng.random(257).astype(np.float32)
        for k in (0, 1, 7, 64, 256, 257, 500):
            np.testing.assert_array_equal(
                ps.coldest_in(DRAM, k), self.reference_coldest(ps, DRAM, k)
            )
            np.testing.assert_array_equal(
                ps.hottest_in(DRAM, k), self.reference_hottest(ps, DRAM, k)
            )

    def test_matches_argsort_with_ties(self):
        # few distinct values → heavy ties at every selection boundary
        rng = np.random.default_rng(1)
        ps = ps_of(200)
        ps.assign(np.arange(200), CXL)
        ps.temperature = rng.integers(0, 4, 200).astype(np.float32)
        for k in range(1, 201, 13):
            np.testing.assert_array_equal(
                ps.coldest_in(CXL, k), self.reference_coldest(ps, CXL, k)
            )
            np.testing.assert_array_equal(
                ps.hottest_in(CXL, k), self.reference_hottest(ps, CXL, k)
            )

    def test_all_equal_temperatures_tie_break_by_index(self):
        ps = ps_of(50)
        ps.assign(np.arange(50), DRAM)
        ps.temperature[:] = 2.5
        np.testing.assert_array_equal(ps.coldest_in(DRAM, 10), np.arange(10))
        np.testing.assert_array_equal(ps.hottest_in(DRAM, 10), np.arange(10))

    @given(
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=64),
        st.integers(min_value=1, max_value=70),
    )
    def test_property_matches_reference(self, temps, k):
        n = len(temps)
        ps = ps_of(n)
        ps.assign(np.arange(n), DRAM)
        ps.temperature = np.array(temps, dtype=np.float32)
        np.testing.assert_array_equal(
            ps.coldest_in(DRAM, k), self.reference_coldest(ps, DRAM, k)
        )
        np.testing.assert_array_equal(
            ps.hottest_in(DRAM, k), self.reference_hottest(ps, DRAM, k)
        )

    def test_weight_by_tier_matches_add_at(self):
        rng = np.random.default_rng(2)
        ps = ps_of(300)
        tiers = rng.integers(0, NUM_TIERS, 300)
        ps.assign(np.arange(300), DRAM)
        ps.tier[:] = tiers.astype(np.int8)
        ps.tier[::7] = UNMAPPED
        ps.access_weight = rng.random(300).astype(np.float32)
        ref = np.zeros(NUM_TIERS, dtype=np.float64)
        mask = ps.mapped_mask
        np.add.at(ref, ps.tier[mask].astype(np.int64), ps.access_weight[mask])
        ref /= ref.sum()
        np.testing.assert_allclose(ps.weight_by_tier(), ref, rtol=0, atol=0)
