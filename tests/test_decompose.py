"""Workflow-deconstruction tests."""

import pytest

from repro.util.errors import WorkflowError
from repro.util.units import KiB, MiB
from repro.wms.decompose import decompose_task, decomposed_footprint
from repro.workflows.library import checkpointing_task, deep_learning_task
from repro.workflows.task import WorkloadClass

from conftest import simple_task
from test_scheduler import make_sched


class TestDecomposeTask:
    def test_chain_structure(self):
        spec = deep_learning_task("dl", scale=1 / 512, epochs=2)  # 3 phases
        wf = decompose_task(spec)
        assert len(wf) == 3
        assert wf.stages() == [["dl.s0"], ["dl.s1"], ["dl.s2"]]
        assert [s.phases[0].name for s in (wf.spec(t) for t in wf.topological_order())] == [
            "load-dataset", "epoch-1", "epoch-2",
        ]

    def test_grouping(self):
        spec = deep_learning_task("dl", scale=1 / 512, epochs=3)  # 4 phases
        wf = decompose_task(spec, group=2)
        assert len(wf) == 2
        assert len(wf.spec("dl.s0").phases) == 2

    def test_footprints_shrink_to_touched(self):
        spec = deep_learning_task("dl", scale=1 / 512)
        wf = decompose_task(spec, handoff_fraction=0.10)
        load = wf.spec("dl.s0")  # touches 25% + 10% handoff
        assert load.footprint == pytest.approx(spec.footprint * 0.35, rel=0.02)
        assert load.footprint < spec.footprint
        assert load.wss <= load.footprint

    def test_no_shrink_option(self):
        spec = deep_learning_task("dl", scale=1 / 512)
        wf = decompose_task(spec, shrink_footprint=False)
        assert all(wf.spec(t).footprint == spec.footprint for t in wf.topological_order())

    def test_total_ideal_duration_preserved(self):
        spec = deep_learning_task("dl", scale=1 / 512)
        wf = decompose_task(spec)
        assert wf.critical_path_time() == pytest.approx(spec.ideal_duration)

    def test_memory_limit_scaled(self):
        from dataclasses import replace

        spec = replace(
            simple_task("t", footprint=MiB(4), n_phases=2), memory_limit=MiB(8)
        )
        wf = decompose_task(spec)
        for t in wf.topological_order():
            sub = wf.spec(t)
            assert sub.memory_limit >= sub.footprint

    def test_checkpoint_pairs_within_group_ok(self):
        spec = checkpointing_task(scale=1 / 512, checkpoints=2)  # 4 phases
        # grouping by whole (alloc ... release) cycles keeps regions local
        wf = decompose_task(spec, group=4)
        assert len(wf) == 1

    def test_cross_subtask_release_rejected(self):
        spec = checkpointing_task(scale=1 / 512, checkpoints=2)
        # per-phase split separates checkpoint-0's allocation from
        # compute-1's release of it
        with pytest.raises(WorkflowError, match="releases a region"):
            decompose_task(spec, group=1)

    def test_decomposed_footprint_floor(self):
        spec = simple_task("t", footprint=MiB(1))
        fp = decomposed_footprint(spec, spec.phases, handoff_fraction=0.0)
        assert 0 < fp <= spec.footprint


class TestDecomposedExecution:
    def test_chain_runs_end_to_end(self, engine, metrics):
        from dataclasses import replace

        sched, _ = make_sched(engine, metrics)
        from repro.wms.planner import WorkflowExecution

        spec = replace(
            deep_learning_task("dl", scale=1 / 512, epochs=2), image="default.sif"
        )
        ex = WorkflowExecution(decompose_task(spec), sched)
        ex.start()
        sched.run_to_completion()
        assert ex.succeeded
        total_exec = sum(
            metrics.get(f"dl.s{i}").execution_time for i in range(3)
        )
        assert total_exec == pytest.approx(spec.ideal_duration, rel=0.1)
