"""Workload JSON round-trip tests."""

import json

import numpy as np
import pytest

from repro.workflows.dag import diamond_workflow
from repro.workflows.library import (
    checkpointing_task,
    paper_workload_suite,
    scientific_task,
    with_shared_input,
)
from repro.workflows.patterns import (
    HotColdPattern,
    StreamingPattern,
    UniformPattern,
    ZipfPattern,
)
from repro.workflows.serialization import (
    dump_specs,
    dump_workflow,
    load_specs,
    load_workflow,
    pattern_from_dict,
    pattern_to_dict,
    spec_from_dict,
    spec_to_dict,
    workflow_from_dict,
    workflow_to_dict,
)
from repro.util.units import MiB

from conftest import simple_task


class TestPatternRoundTrip:
    @pytest.mark.parametrize(
        "pattern",
        [
            HotColdPattern(0.2, 0.85),
            ZipfPattern(1.1),
            StreamingPattern(0.3),
            UniformPattern(),
            ZipfPattern(0.9).permuted(seed=7),
        ],
        ids=lambda p: type(p).__name__,
    )
    def test_roundtrip_preserves_weights(self, pattern):
        back = pattern_from_dict(pattern_to_dict(pattern))
        assert np.allclose(back.weights(64, 2), pattern.weights(64, 2))

    def test_unknown_type_rejected(self):
        with pytest.raises(Exception, match="unknown pattern"):
            pattern_from_dict({"type": "fractal"})


class TestSpecRoundTrip:
    def test_simple_spec(self):
        spec = simple_task("t", footprint=MiB(2))
        back = spec_from_dict(spec_to_dict(spec))
        assert back == spec

    @pytest.mark.parametrize("builder_key", ["DL", "DM", "DC", "SC"])
    def test_paper_workloads_roundtrip(self, builder_key):
        from repro.workflows.task import WorkloadClass

        suite = paper_workload_suite(0.01)
        spec = suite[WorkloadClass[builder_key]]
        back = spec_from_dict(spec_to_dict(spec))
        assert back == spec

    def test_dynamic_request_roundtrip(self):
        spec = scientific_task(scale=0.01, request_extra=True)
        back = spec_from_dict(spec_to_dict(spec))
        assert back == spec

    def test_checkpoint_release_regions_roundtrip(self):
        spec = checkpointing_task(scale=0.01, checkpoints=2)
        back = spec_from_dict(spec_to_dict(spec))
        assert back == spec

    def test_shared_inputs_and_limit_roundtrip(self):
        from dataclasses import replace

        spec = with_shared_input(simple_task("t", footprint=MiB(2)), "data", MiB(8))
        spec = replace(spec, memory_limit=MiB(4))
        back = spec_from_dict(spec_to_dict(spec))
        assert back == spec

    def test_dump_load_specs_json(self):
        specs = list(paper_workload_suite(0.01).values())
        text = dump_specs(specs)
        json.loads(text)  # valid JSON
        assert load_specs(text) == specs


class TestWorkflowRoundTrip:
    def test_diamond(self):
        wf = diamond_workflow(
            "d",
            simple_task("pre"),
            [simple_task("b1"), simple_task("b2")],
            simple_task("post"),
        )
        back = load_workflow(dump_workflow(wf))
        assert back.name == wf.name
        assert set(back.graph.edges()) == set(wf.graph.edges())
        assert back.spec("b1") == wf.spec("b1")
        assert back.stages() == wf.stages()

    def test_workflow_dict_edges_sorted(self):
        wf = diamond_workflow(
            "d", simple_task("pre"), [simple_task("b1")], simple_task("post")
        )
        data = workflow_to_dict(wf)
        assert data["edges"] == sorted(data["edges"])
        workflow_from_dict(data).validate()
