"""Statistical-equivalence contract for the ``arena-fast`` backend.

``arena-fast`` trades the exact backends' chunk-for-chunk movement
semantics for whole-node batched kernels.  Its contract, pinned here and
documented in docs/performance.md, has three clauses:

1. **Exact outside IMME.**  The batched paths are only reachable through
   the IMME movement daemon, so the IE/CBE/TME environments and every
   baseline policy must stay *bit-identical* to the object backend —
   full per-task metric fingerprints, same as tests/test_arena.py pins
   between object and arena.

2. **Statistically equivalent inside IMME.**  Scenario-level outcomes
   (makespan, startup, fault totals, latency percentiles) must agree
   with the object backend within the declared tolerance bands in
   :data:`BANDS`; completion and failure *counts* must agree exactly,
   including under fault injection.

3. **Spec artifacts are backend-invariant.**  Scenario digests (the
   result-cache keys) never move with ``REPRO_CORE``.

The scenario sweep samples every registered family (one member each,
preferring an IMME member since that is where the backends diverge) so a
new family cannot land outside the contract unnoticed.
"""

import os

import numpy as np
import pytest

from repro.core.movement import IntelligentPageMovement, MovementConfig
from repro.core.replacement import PageReplacementPolicy
from repro.core.arena import (
    BACKEND_ARENA,
    BACKEND_ARENA_FAST,
    BACKEND_OBJECT,
)
from repro.core.flags import MemFlag
from repro.envs.environments import EnvKind
from repro.faults.spec import FaultKind, FaultSchedule, FaultSpec
from repro.memory.system import NodeMemorySystem
from repro.memory.tiers import DRAM, PMEM, SWAP
from repro.policies.base import PolicyContext
from repro.scenarios.build import run_scenario
from repro.scenarios.registry import REGISTRY, _ensure_catalog
from repro.util.units import MiB

from conftest import make_pageset, small_specs
from test_arena import ENV_CASES, metrics_fingerprint, run_small_metrics

FAST = BACKEND_ARENA_FAST

#: Relative tolerance per aggregate, arena-fast vs object, for IMME runs.
#: These are the *declared* bands from docs/performance.md — widening one
#: is a contract change and needs a matching docs edit.  Calibration
#: across every registry family puts the worst observed deviation at
#: ~20% makespan / ~15% p95 execution (ext-shared-inputs, in arena-fast's
#: favor: batched shadowing keeps shared inputs page-cached longer);
#: every other family sits under 3%.
BANDS = {
    "makespan": 0.25,
    "mean_startup": 0.15,
    "minor_faults": 0.35,
    "major_faults": 0.35,
    "latency_p95": 0.20,
}


def assert_band(name, fast_value, exact_value, rel=None, abs_floor=1e-9):
    rel = BANDS[name] if rel is None else rel
    tol = max(abs_floor, rel * abs(exact_value))
    assert abs(fast_value - exact_value) <= tol, (
        f"{name}: arena-fast={fast_value!r} vs object={exact_value!r} "
        f"exceeds the declared ±{rel:.0%} band"
    )


# --------------------------------------------------------------------------- #
# clause 1: bit-exact wherever the fast paths are unreachable
# --------------------------------------------------------------------------- #


class TestExactOutsideImme:
    @pytest.mark.parametrize(
        "kind,policy_factory",
        [(k, p) for _, k, p in ENV_CASES if k is not EnvKind.IMME],
        ids=[label for label, k, _ in ENV_CASES if k is not EnvKind.IMME],
    )
    def test_non_imme_envs_bit_identical(self, kind, policy_factory):
        fps = [
            metrics_fingerprint(run_small_metrics(b, kind, policy_factory))
            for b in (BACKEND_OBJECT, FAST)
        ]
        assert fps[0] == fps[1]

    def test_fast_node_actually_runs_the_batched_kernels(self):
        """Guard against the dispatch silently falling back to the exact
        path (which would make every equivalence test above vacuous)."""
        node = NodeMemorySystem(small_specs(), "fast", backend=FAST)
        assert node.fast_core and node.arena is not None
        ctx = PolicyContext(memory=node, rng=np.random.default_rng(0))
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(ps.n_chunks), SWAP)
        ps.temperature[:] = 1.0
        replacement = PageReplacementPolicy(lambda o: MemFlag.NONE)
        movement = IntelligentPageMovement(
            lambda o: MemFlag.NONE, replacement, MovementConfig()
        )
        before = node.arena.kernel_invocations
        movement.tick(ctx, promote_budget_bytes=MiB(1))
        assert node.arena.kernel_invocations > before
        assert ps.bytes_in(DRAM) > 0  # and the promotion actually happened
        node.validate()


# --------------------------------------------------------------------------- #
# clause 2: IMME within bands
# --------------------------------------------------------------------------- #


def aggregates(metrics):
    tasks = list(metrics.tasks())
    return {
        "n_tasks": len(tasks),
        "completed": len(metrics.completed()),
        "failed": len(metrics.failed()),
        "makespan": metrics.makespan(),
        "mean_startup": metrics.mean_startup_time(),
        "minor_faults": sum(t.minor_faults for t in tasks),
        "major_faults": sum(t.major_faults for t in tasks),
        "oom_kills": sum(t.oom_kills for t in tasks),
        "retries": sum(t.retries for t in tasks),
        "latency_p95": metrics.percentiles("execution_time")[1],
    }


def assert_imme_equivalent(fast, exact):
    # counts are part of the *exact* clause even inside IMME: the batched
    # daemon may move different chunks, but it must not change what the
    # cluster accomplishes
    for name in ("n_tasks", "completed", "failed", "oom_kills", "retries"):
        assert fast[name] == exact[name], (
            f"{name}: arena-fast={fast[name]} vs object={exact[name]} "
            "(counts must match exactly)"
        )
    for name in BANDS:
        assert_band(name, fast[name], exact[name])


class TestImmeWithinBands:
    def test_paper_batch(self):
        exact = aggregates(run_small_metrics(BACKEND_OBJECT, EnvKind.IMME))
        fast = aggregates(run_small_metrics(FAST, EnvKind.IMME))
        assert_imme_equivalent(fast, exact)

    def test_fault_injection(self):
        def schedule():
            return FaultSchedule(
                [
                    FaultSpec(FaultKind.TIER_OFFLINE, time=3.0, node=0, tier=PMEM,
                              duration=10.0),
                    FaultSpec(FaultKind.NODE_CRASH, time=6.0, node=1, duration=15.0),
                ]
            )

        exact = aggregates(
            run_small_metrics(BACKEND_OBJECT, EnvKind.IMME, faults=schedule())
        )
        fast = aggregates(run_small_metrics(FAST, EnvKind.IMME, faults=schedule()))
        assert_imme_equivalent(fast, exact)


# --------------------------------------------------------------------------- #
# clause 2 at scenario level: every registered family
# --------------------------------------------------------------------------- #

_ensure_catalog()


def family_pick(name):
    """One member per family: prefer IMME (where the backends diverge),
    then TME, else the first member."""
    fam = REGISTRY.family(name)
    for kind in (EnvKind.IMME, EnvKind.TME):
        for spec in fam:
            if spec.env is kind:
                return spec
    return fam.scenarios[0]


def run_family_outcome(spec, backend):
    saved = os.environ.get("REPRO_CORE")
    os.environ["REPRO_CORE"] = backend
    try:
        return run_scenario(spec)
    finally:
        if saved is None:
            os.environ.pop("REPRO_CORE", None)
        else:
            os.environ["REPRO_CORE"] = saved


class TestEveryScenarioFamily:
    @pytest.mark.parametrize("name", REGISTRY.family_names())
    def test_family_within_bands(self, name):
        spec = family_pick(name)
        exact = run_family_outcome(spec, BACKEND_OBJECT)
        fast = run_family_outcome(spec, FAST)
        assert fast.digest == exact.digest
        assert fast.seed == exact.seed
        assert (fast.completed, fast.failed) == (exact.completed, exact.failed)
        if spec.env is not EnvKind.IMME:
            # the fast paths are unreachable here: full outcome equality
            assert fast == exact
            return
        assert_band("makespan", fast.makespan, exact.makespan)
        assert_band("mean_startup", fast.mean_startup, exact.mean_startup)
        for metric in ("queue_wait", "startup_time", "execution_time"):
            assert_band(
                "latency_p95",
                fast.percentile(metric, 95),
                exact.percentile(metric, 95),
            )


# --------------------------------------------------------------------------- #
# clause 3: digests never move with the backend
# --------------------------------------------------------------------------- #


class TestDigestInvariance:
    def test_digests_identical_across_all_three_backends(self, monkeypatch):
        digests = []
        for backend in (BACKEND_OBJECT, BACKEND_ARENA, FAST):
            monkeypatch.setenv("REPRO_CORE", backend)
            digests.append(
                [REGISTRY.family(n).digest() for n in REGISTRY.family_names()]
            )
        assert digests[0] == digests[1] == digests[2]
