"""Linux LRU-swap baseline tests."""

import numpy as np
import pytest

from repro.core.flags import MemFlag
from repro.memory.tiers import DRAM, SWAP
from repro.policies.base import AllocationRequest
from repro.policies.linux import LinuxSwapPolicy, global_coldest
from repro.util.units import MiB

from conftest import CHUNK, make_pageset


def place_all(ctx, policy, owner, nbytes, flags=MemFlag.NONE):
    ps = make_pageset(ctx.memory, owner, nbytes)
    policy.place(ctx, ps, AllocationRequest(owner, 0, nbytes, flags))
    return ps


class TestPlacement:
    def test_demand_dram_first(self, ctx):
        policy = LinuxSwapPolicy(scan_noise=0.0)
        ps = place_all(ctx, policy, "a", MiB(2))
        assert ps.bytes_in(DRAM) == MiB(2)

    def test_reclaim_then_swap_overflow(self, ctx):
        policy = LinuxSwapPolicy(scan_noise=0.0)
        a = place_all(ctx, policy, "a", MiB(4))  # fills DRAM
        a.temperature[:] = 0.0  # all cold, fully evictable
        b = place_all(ctx, policy, "b", MiB(2))
        # direct reclaim pushed a's cold pages out to make room for b
        assert b.bytes_in(DRAM) == MiB(2)
        assert a.bytes_in(SWAP) == MiB(2)
        ctx.memory.validate()

    def test_pinned_pages_never_reclaimed(self, ctx):
        policy = LinuxSwapPolicy(scan_noise=0.0)
        a = place_all(ctx, policy, "a", MiB(4))
        a.pinned[:] = True
        b = place_all(ctx, policy, "b", MiB(2))
        assert a.bytes_in(SWAP) == 0
        assert b.bytes_in(SWAP) == MiB(2)  # no reclaimable memory -> swap


class TestKswapdTick:
    def test_tick_honours_watermarks(self, ctx):
        policy = LinuxSwapPolicy(high_watermark=0.5, low_watermark=0.25, scan_noise=0.0)
        ps = place_all(ctx, policy, "a", MiB(3))  # 75% of 4 MiB DRAM
        policy.tick(ctx)
        assert ctx.memory.rss(DRAM) <= 0.25 * ctx.memory.capacity(DRAM) + CHUNK
        ctx.memory.validate()

    def test_tick_noop_below_watermark(self, ctx):
        policy = LinuxSwapPolicy(high_watermark=0.9, low_watermark=0.8, scan_noise=0.0)
        place_all(ctx, policy, "a", MiB(1))
        policy.tick(ctx)
        assert ctx.memory.stats.swapped_out_bytes == 0

    def test_watermark_validation(self):
        with pytest.raises(Exception):
            LinuxSwapPolicy(high_watermark=0.5, low_watermark=0.9)


class TestGlobalColdest:
    def _two_pagesets(self, ctx):
        a = make_pageset(ctx.memory, "a", MiB(1))
        b = make_pageset(ctx.memory, "b", MiB(1))
        ctx.memory.place(a, np.arange(a.n_chunks), DRAM)
        ctx.memory.place(b, np.arange(b.n_chunks), DRAM)
        return a, b

    def test_merges_across_pagesets(self, ctx):
        a, b = self._two_pagesets(ctx)
        a.temperature[:] = 10.0
        b.temperature[:] = 1.0
        victims = dict(
            (ps.owner, idx) for ps, idx in global_coldest(ctx, DRAM, b.n_chunks)
        )
        assert set(victims) == {"b"}

    def test_respects_skip_owners(self, ctx):
        a, b = self._two_pagesets(ctx)
        victims = global_coldest(ctx, DRAM, 4, skip_owners=frozenset({"a"}))
        assert all(ps.owner == "b" for ps, _ in victims)

    def test_zero_request(self, ctx):
        self._two_pagesets(ctx)
        assert global_coldest(ctx, DRAM, 0) == []

    def test_scan_noise_hits_hot_pages_eventually(self, ctx):
        """With noise, hot pages are occasionally victimised — the kernel's
        frequency-blindness that motivates Algorithm 2."""
        a, b = self._two_pagesets(ctx)
        a.temperature[:] = 100.0  # very hot
        b.temperature[:] = 0.0
        hot_victims = 0
        for _ in range(50):
            for ps, idx in global_coldest(ctx, DRAM, 8, scan_noise=0.5):
                if ps.owner == "a":
                    hot_victims += idx.size
        assert hot_victims > 0

    def test_no_noise_is_strict_lru(self, ctx):
        a, b = self._two_pagesets(ctx)
        a.temperature[:] = 100.0
        b.temperature[:] = 0.0
        for _ in range(20):
            for ps, _ in global_coldest(ctx, DRAM, 8, scan_noise=0.0):
                assert ps.owner == "b"

    def test_victim_indices_unique(self, ctx):
        a, b = self._two_pagesets(ctx)
        for ps, idx in global_coldest(ctx, DRAM, 32, scan_noise=0.5):
            assert len(set(idx.tolist())) == idx.size
