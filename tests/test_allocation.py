"""Algorithm 1 tests: cascading LAT/SHL, proportional BW, CXL-direct CAP,
flag decomposition, and global-map bookkeeping."""

import pytest
from hypothesis import given, strategies as st

from repro.core.allocation import EvictableMap, TierAllocator, bandwidth_fractions
from repro.core.flags import MemFlag
from repro.core.predictor import ExecutionRecord, FlagPredictor
from repro.memory.tiers import CXL, DRAM, PMEM
from repro.util.units import MiB

from conftest import small_specs


def allocator(**kw):
    return TierAllocator(small_specs(**kw) if kw else small_specs())


def ev_map(dram=MiB(4), pmem=MiB(8), cxl=MiB(64)):
    return EvictableMap({DRAM: dram, PMEM: pmem, CXL: cxl})


class TestBandwidthFractions:
    def test_proportional_to_throughput(self):
        fr = bandwidth_fractions(small_specs())
        assert sum(fr.values()) == pytest.approx(1.0)
        assert fr[DRAM] > fr[CXL] > 0
        assert fr[DRAM] > fr[PMEM] > 0

    def test_zero_capacity_tier_excluded(self):
        fr = bandwidth_fractions(small_specs(pmem=0))
        assert PMEM not in fr


class TestLatCascade:
    def test_all_dram_when_room(self):
        plan = allocator().tier_alloc("w", MiB(2), MemFlag.LAT, ev_map())
        assert plan.per_flag[MemFlag.LAT] == {DRAM: MiB(2)}

    def test_cascade_dram_pmem_cxl(self):
        plan = allocator().tier_alloc(
            "w", MiB(16), MemFlag.LAT, ev_map(dram=MiB(4), pmem=MiB(8))
        )
        tiers = plan.per_flag[MemFlag.LAT]
        assert tiers[DRAM] == MiB(4)
        assert tiers[PMEM] == MiB(8)
        assert tiers[CXL] == MiB(4)

    def test_cxl_is_unlimited(self):
        plan = allocator().tier_alloc(
            "w", MiB(100), MemFlag.SHL, ev_map(dram=0, pmem=0, cxl=0)
        )
        assert plan.per_flag[MemFlag.SHL][CXL] == MiB(100)

    def test_ev_consumed(self):
        ev = ev_map(dram=MiB(4))
        allocator().tier_alloc("w", MiB(3), MemFlag.LAT, ev)
        assert ev[DRAM] == MiB(1)


class TestBandwidthSplit:
    def test_multi_tier_split(self):
        # roomy evictable map: the split is purely throughput-proportional
        plan = allocator().tier_alloc(
            "w", MiB(12), MemFlag.BW, ev_map(dram=MiB(16), pmem=MiB(16))
        )
        tiers = plan.per_flag[MemFlag.BW]
        assert set(tiers) == {DRAM, PMEM, CXL}
        assert plan.total_bytes == MiB(12)
        # proportional to tier throughput: DRAM gets the lion's share
        assert tiers[DRAM] > tiers[CXL]
        assert tiers[DRAM] > tiers[PMEM]

    def test_constrained_dram_rolls_to_next_tier(self):
        # Alg. 1 lines 26-28: DRAM's unsatisfied share lands on PMem
        plan = allocator().tier_alloc("w", MiB(12), MemFlag.BW, ev_map(dram=MiB(4)))
        tiers = plan.per_flag[MemFlag.BW]
        assert tiers[DRAM] == MiB(4)
        assert tiers[PMEM] > tiers[CXL]
        assert plan.total_bytes == MiB(12)

    def test_contended_tier_remainder_rolls_forward(self):
        plan = allocator().tier_alloc("w", MiB(12), MemFlag.BW, ev_map(dram=MiB(1)))
        tiers = plan.per_flag[MemFlag.BW]
        assert tiers[DRAM] == MiB(1)
        assert plan.total_bytes == MiB(12)


class TestCapacity:
    def test_cap_goes_straight_to_cxl(self):
        plan = allocator().tier_alloc("w", MiB(32), MemFlag.CAP, ev_map())
        assert plan.per_flag[MemFlag.CAP] == {CXL: MiB(32)}


class TestDecomposition:
    def test_composite_flags_split_by_prediction(self):
        predictor = FlagPredictor(default_lat_fraction=0.25)
        alloc = TierAllocator(small_specs(), predictor)
        plan = alloc.tier_alloc("w", MiB(8), MemFlag.LAT | MemFlag.CAP, ev_map())
        assert plan.bytes_for(MemFlag.LAT) == MiB(2)
        assert plan.bytes_for(MemFlag.CAP) == MiB(6)
        assert plan.total_bytes == MiB(8)

    def test_none_flags_invoke_predictor(self):
        predictor = FlagPredictor()
        predictor.store.record(ExecutionRecord("w", MiB(8), {MemFlag.BW: MiB(8)}))
        alloc = TierAllocator(small_specs(), predictor)
        plan = alloc.tier_alloc("w", MiB(8), MemFlag.NONE, ev_map())
        assert MemFlag.BW in plan.per_flag

    def test_history_drives_split(self):
        predictor = FlagPredictor()
        predictor.store.record(
            ExecutionRecord("w", MiB(8), {MemFlag.LAT: MiB(2), MemFlag.CAP: MiB(6)})
        )
        alloc = TierAllocator(small_specs(), predictor)
        plan = alloc.tier_alloc("w", MiB(16), MemFlag.LAT | MemFlag.CAP, ev_map())
        assert plan.bytes_for(MemFlag.LAT) == pytest.approx(MiB(4), abs=1)


class TestGlobalMaps:
    def test_alloc_map_updated(self):
        alloc = allocator()
        alloc.tier_alloc("w", MiB(4), MemFlag.CAP, ev_map())
        assert alloc.allocated_to("w")[int(CXL)] == MiB(4)

    def test_alloc_map_accumulates(self):
        alloc = allocator()
        alloc.tier_alloc("w", MiB(4), MemFlag.CAP, ev_map())
        alloc.tier_alloc("w", MiB(4), MemFlag.CAP, ev_map())
        assert alloc.allocated_to("w")[int(CXL)] == MiB(8)

    def test_forget(self):
        alloc = allocator()
        alloc.tier_alloc("w", MiB(4), MemFlag.CAP, ev_map())
        alloc.forget("w")
        assert alloc.allocated_to("w").sum() == 0


class TestPlanTotalsProperty:
    @given(
        st.integers(min_value=1, max_value=2**28),
        st.sampled_from(
            [
                MemFlag.LAT,
                MemFlag.SHL,
                MemFlag.BW,
                MemFlag.CAP,
                MemFlag.LAT | MemFlag.CAP,
                MemFlag.BW | MemFlag.CAP,
                MemFlag.LAT | MemFlag.BW | MemFlag.CAP,
                MemFlag.NONE,
            ]
        ),
        st.integers(min_value=0, max_value=2**24),
        st.integers(min_value=0, max_value=2**24),
    )
    def test_plan_always_covers_request(self, nbytes, flags, dram_ev, pmem_ev):
        """Whatever the flags and evictable state, Algorithm 1 plans
        exactly the requested bytes (CXL absorbs any shortfall)."""
        alloc = allocator()
        ev = EvictableMap({DRAM: dram_ev, PMEM: pmem_ev, CXL: MiB(64)})
        plan = alloc.tier_alloc("w", nbytes, flags, ev)
        assert plan.total_bytes == nbytes
        assert all(n >= 0 for tm in plan.per_flag.values() for n in tm.values())
