"""Page-heatmap tests: decay, accumulation, hot-set and idle analyses."""

import math

import numpy as np
import pytest

from repro.core.heatmap import HeatmapConfig, PageHeatmap, hot_mask, idle_fraction
from repro.memory.pageset import PageSet
from repro.memory.tiers import DRAM
from repro.util.units import KiB

from conftest import CHUNK, make_pageset

def fresh_ps(n=8):
    ps = PageSet("t", n * CHUNK, CHUNK)
    return ps


class TestAdvance:
    def test_accumulates_weighted_heat(self):
        ps = fresh_ps(4)
        ps.access_weight[:] = [0.7, 0.3, 0, 0]
        PageHeatmap(HeatmapConfig(tau=30.0)).advance(ps, dt=1.0)
        assert ps.temperature[0] > ps.temperature[1] > 0
        assert ps.temperature[2] == 0

    def test_exponential_decay(self):
        ps = fresh_ps(2)
        ps.temperature[:] = 1.0
        hm = PageHeatmap(HeatmapConfig(tau=10.0))
        hm.advance(ps, dt=10.0, access_rate=0.0)
        assert ps.temperature[0] == pytest.approx(math.exp(-1.0), rel=1e-5)

    def test_zero_dt_noop(self):
        ps = fresh_ps(2)
        ps.temperature[:] = 1.0
        PageHeatmap().advance(ps, dt=0.0)
        assert (ps.temperature == 1.0).all()

    def test_access_rate_scales_heating(self):
        fast, slow = fresh_ps(2), fresh_ps(2)
        for ps in (fast, slow):
            ps.access_weight[:] = 0.5
        hm = PageHeatmap()
        hm.advance(fast, 1.0, access_rate=1.0)
        hm.advance(slow, 1.0, access_rate=0.1)
        assert fast.temperature[0] > slow.temperature[0]

    def test_advance_node_uses_per_owner_rates(self, node):
        a = make_pageset(node, "a", 4 * CHUNK)
        b = make_pageset(node, "b", 4 * CHUNK)
        for ps in (a, b):
            ps.access_weight[:] = 0.25
        PageHeatmap().advance_node(node, 1.0, rates={"a": 1.0})  # b idle
        assert a.temperature[0] > 0
        assert b.temperature[0] == 0


class TestHotMask:
    def test_covers_requested_heat_share(self):
        ps = fresh_ps(10)
        ps.temperature[:] = [50, 30, 10, 5, 2, 1, 1, 0.5, 0.3, 0.2]
        mask = hot_mask(ps, 0.80)
        covered = ps.temperature[mask].sum() / ps.temperature.sum()
        assert covered >= 0.80
        # and is minimal: dropping the coolest member must fall below
        idx = np.flatnonzero(mask)
        reduced = ps.temperature[idx].sum() - ps.temperature[idx].min()
        assert reduced / ps.temperature.sum() < 0.80

    def test_no_heat_no_hot_set(self):
        ps = fresh_ps(4)
        assert not hot_mask(ps, 0.8).any()

    def test_zero_share(self):
        ps = fresh_ps(4)
        ps.temperature[:] = 1.0
        assert not hot_mask(ps, 0.0).any()

    def test_hot_set_bytes(self):
        ps = fresh_ps(10)
        ps.temperature[:] = 0
        ps.temperature[:2] = 100.0
        hm = PageHeatmap(HeatmapConfig(hot_quantile_share=0.8))
        assert hm.hot_set_bytes(ps) == 2 * CHUNK


class TestIdleFraction:
    def test_counts_untouched_mapped_chunks(self, node):
        ps = make_pageset(node, "a", 8 * CHUNK)
        node.place(ps, np.arange(8), DRAM)
        ps.temperature[:4] = 1.0
        assert idle_fraction(ps) == pytest.approx(0.5)

    def test_unmapped_excluded(self, node):
        ps = make_pageset(node, "a", 8 * CHUNK)
        node.place(ps, np.arange(4), DRAM)
        assert idle_fraction(ps) == pytest.approx(1.0)

    def test_empty_pageset(self):
        assert idle_fraction(fresh_ps(4)) == 0.0


class TestColdChunks:
    def test_threshold(self):
        ps = fresh_ps(4)
        ps.temperature[:] = [0.0, 0.005, 0.5, 1.0]
        cold = PageHeatmap().cold_chunks(ps, threshold=0.01)
        assert list(cold) == [0, 1]
