"""Arrival-process and open-loop submission tests."""

import numpy as np
import pytest

from repro.envs.environments import EnvKind, make_environment
from repro.util.rng import RngFactory
from repro.util.units import KiB, MiB
from repro.workflows.arrivals import burst_arrivals, poisson_arrivals, uniform_arrivals

from conftest import simple_task

CHUNK = KiB(64)


class TestGenerators:
    def test_uniform_spacing(self):
        at = uniform_arrivals(2.0, 4)
        assert at == [2.0, 4.0, 6.0, 8.0]

    def test_uniform_with_start(self):
        assert uniform_arrivals(1.0, 2, start=10.0) == [11.0, 12.0]

    def test_poisson_monotone_and_deterministic(self):
        a = poisson_arrivals(0.5, 20, rng_factory=RngFactory(3))
        b = poisson_arrivals(0.5, 20, rng_factory=RngFactory(3))
        assert a == b
        assert all(x < y for x, y in zip(a, a[1:]))

    def test_poisson_mean_gap_matches_rate(self):
        at = poisson_arrivals(2.0, 2000, rng_factory=RngFactory(1))
        gaps = np.diff([0.0] + at)
        assert gaps.mean() == pytest.approx(0.5, rel=0.1)

    def test_burst_structure(self):
        at = burst_arrivals(3, 2, 10.0)
        assert at == [0.0, 0.0, 10.0, 10.0, 20.0, 20.0]

    def test_validation(self):
        with pytest.raises(Exception):
            poisson_arrivals(0.0, 5)
        with pytest.raises(Exception):
            uniform_arrivals(1.0, 0)


class TestRunArrivals:
    def test_jobs_submitted_at_their_times(self):
        env = make_environment(EnvKind.IE, dram_capacity=MiB(64), chunk_size=CHUNK)
        specs = [simple_task(f"t{i}", footprint=MiB(1), base_time=1.0) for i in range(3)]
        metrics = env.run_arrivals(specs, [1.0, 5.0, 9.0])
        subs = sorted(t.submitted_at for t in metrics.tasks())
        assert subs == pytest.approx([1.0, 5.0, 9.0])
        assert len(metrics.completed()) == 3
        env.stop()

    def test_mismatched_lengths_rejected(self):
        env = make_environment(EnvKind.IE, dram_capacity=MiB(64), chunk_size=CHUNK)
        with pytest.raises(Exception):
            env.run_arrivals([simple_task("t")], [1.0, 2.0])
        env.stop()

    def test_late_arrivals_see_loaded_node(self):
        """A job arriving while a rival saturates bandwidth runs slower
        than one arriving after the rival finished."""
        from repro.util.units import GBps

        def dm(name):
            return simple_task(
                name, footprint=MiB(1), base_time=4.0,
                lat_frac=0.0, bw_frac=0.9, demand_bandwidth=GBps(90.0),
            )

        env = make_environment(EnvKind.IE, dram_capacity=MiB(64), chunk_size=CHUNK)
        metrics = env.run_arrivals(
            [dm("hog"), dm("early"), dm("late")], [0.0, 0.0, 30.0]
        )
        early = metrics.get("early").execution_time
        late = metrics.get("late").execution_time
        assert early > late
        env.stop()
