"""Smoke tests for every figure harness at miniature scale.

These verify the harnesses run end-to-end, produce complete series, and
hold the paper's *qualitative* orderings; the benchmarks run the full
laptop-scale versions.
"""

import pytest

from repro.experiments import (
    run_cold_pages,
    run_fig01,
    run_fig05,
    run_fig06,
    run_fig07,
    run_fig08,
    run_fig09,
    run_fig10,
    run_fig11,
)
from repro.util.units import KiB
from repro.workflows.task import WorkloadClass

TINY = 1.0 / 512.0
CHUNK = KiB(256)
MIX1 = {
    WorkloadClass.DL: 2,
    WorkloadClass.DM: 2,
    WorkloadClass.DC: 1,
    WorkloadClass.SC: 1,
}


class TestFig01:
    def test_swap_worst_migration_best(self):
        r = run_fig01(scale=TINY, instances_per_class=MIX1, chunk_size=CHUNK)
        for cls in ("DM", "SC"):
            assert r.value("swap-constrained", cls) > r.value("tiered+migration", cls)


class TestFig05:
    def test_series_complete_and_ordered(self):
        r = run_fig05(scale=TINY, instances_per_class=MIX1, chunk_size=CHUNK)
        assert set(r.series) == {"IE", "CBE", "TME", "IMME"}
        for env in r.series:
            assert len(r.series[env]) == 4
        # CBE is the disaster case for at least the capacity-bound class
        assert r.value("CBE", "SC") > r.value("IMME", "SC")


class TestFig06:
    def test_imme_flat_tme_degrades(self):
        r = run_fig06(
            scale=TINY,
            instances_per_class=MIX1,
            fractions=(0.1, 0.5),
            chunk_size=CHUNK,
        )
        assert r.series["TME"][-1] >= r.series["IMME"][-1] * 0.9


class TestFig07:
    def test_all_policies_reported(self):
        r = run_fig07(scale=TINY, instances_per_class=MIX1, chunk_size=CHUNK)
        assert set(r.series) == {
            "default-alloc",
            "uniform-interleave",
            "weighted-interleave",
            "ours-alg1",
        }


class TestFig08:
    def test_ie_degrades_as_dram_shrinks(self):
        r = run_fig08(
            scale=TINY,
            instances_per_class=1,
            fractions=(0.25, 1.0),
            chunk_size=CHUNK,
            classes=(WorkloadClass.DM,),
        )
        assert r.series["IE:DM"][0] > r.series["IE:DM"][-1]
        assert r.series["IMME:DM"][0] <= r.series["IE:DM"][0]


class TestFig09:
    def test_fault_conversion(self):
        r = run_fig09(scale=TINY, instances_per_class=MIX1, chunk_size=CHUNK)
        cbe_majors = sum(r.series["CBE:major"])
        imme_majors = sum(r.series["IMME:major"])
        imme_minors = sum(r.series["IMME:minor"])
        assert cbe_majors > imme_majors
        assert imme_minors > 0


class TestFig10:
    def test_imme_wins_at_scale(self):
        r = run_fig10(
            scale=TINY, total_instances=8, node_counts=(2, 4), chunk_size=CHUNK
        )
        assert r.series["IMME"][-1] <= r.series["CBE"][-1]
        assert r.series["IMME"][-1] <= r.series["IE"][-1]


class TestFig11:
    def test_makespan_grows_with_concurrency(self):
        r = run_fig11(
            scale=TINY, instance_counts=(4, 12), n_nodes=2, chunk_size=CHUNK
        )
        for env in ("CBE", "IMME"):
            assert r.series[env][-1] >= r.series[env][0] * 0.9


class TestColdPages:
    def test_idle_fraction_in_paper_band(self):
        r = run_cold_pages(scale=TINY, chunk_size=CHUNK)
        series = r.series["idle-fraction"]
        assert all(0.4 <= v <= 0.9 for v in series)


class TestFigureResultHelpers:
    def test_to_table_renders(self):
        r = run_fig01(scale=TINY, instances_per_class=MIX1, chunk_size=CHUNK)
        table = r.to_table()
        assert "fig01" in table
        assert "DM" in table

    def test_value_lookup(self):
        r = run_fig01(scale=TINY, instances_per_class=MIX1, chunk_size=CHUNK)
        assert r.value("tiered+migration", "DL") == r.series["tiered+migration"][0]
