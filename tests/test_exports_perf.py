"""Export helpers and vectorisation performance guards."""

import csv
import io
import time

import numpy as np
import pytest

from repro.experiments.common import FigureResult
from repro.memory.contention import fair_share
from repro.memory.pageset import PageSet
from repro.memory.tiers import DRAM
from repro.util.units import KiB

from conftest import simple_task
from test_scheduler import make_sched

CHUNK = KiB(64)


class TestCsvExport:
    def test_roundtrips_through_csv_reader(self):
        r = FigureResult("f", "d", xlabels=["a", "b"])
        r.add_series("IE", [1.5, 2.5])
        r.add_series("IMME", [1.0, 2.0])
        rows = list(csv.reader(io.StringIO(r.to_csv())))
        assert rows[0] == ["f", "a", "b"]
        assert rows[1] == ["IE", "1.5", "2.5"]
        assert len(rows) == 3


class TestMetricsRows:
    def test_rows_cover_done_and_failed(self, engine, metrics):
        sched, _ = make_sched(engine, metrics)
        sched.submit(simple_task("ok", base_time=1.0))
        sched.run_to_completion()
        rows = metrics.to_rows()
        assert len(rows) == 1
        row = rows[0]
        assert row["owner"] == "ok"
        assert row["failed"] is False
        assert row["execution_time"] == pytest.approx(1.0, rel=0.1)
        assert row["phases"] == 1


class TestVectorisationGuards:
    """The hpc-parallel guides' core demand: per-chunk work must be NumPy,
    not Python loops.  These bound the big-array operations."""

    def test_coldest_in_scales_to_100k_chunks(self):
        ps = PageSet("big", 100_000 * CHUNK, CHUNK)
        ps.tier[:] = int(DRAM)
        ps.temperature[:] = np.random.default_rng(0).random(ps.n_chunks).astype(np.float32)
        t0 = time.perf_counter()
        for _ in range(10):
            ps.coldest_in(DRAM, 1000)
        elapsed = (time.perf_counter() - t0) / 10
        assert elapsed < 0.05, f"coldest_in took {elapsed * 1e3:.1f} ms"

    def test_weight_by_tier_scales(self):
        ps = PageSet("big", 100_000 * CHUNK, CHUNK)
        ps.tier[:] = int(DRAM)
        ps.access_weight[:] = 1.0 / ps.n_chunks
        t0 = time.perf_counter()
        for _ in range(20):
            ps.weight_by_tier()
        elapsed = (time.perf_counter() - t0) / 20
        assert elapsed < 0.05

    def test_fair_share_scales_to_10k_tasks(self):
        demands = np.random.default_rng(0).random(10_000) * 1e9
        t0 = time.perf_counter()
        for _ in range(10):
            fair_share(1e12, demands)
        elapsed = (time.perf_counter() - t0) / 10
        assert elapsed < 0.05

    def test_temperature_decay_vectorised(self):
        from repro.core.heatmap import PageHeatmap

        ps = PageSet("big", 200_000 * CHUNK, CHUNK)
        ps.access_weight[:] = 1.0 / ps.n_chunks
        hm = PageHeatmap()
        t0 = time.perf_counter()
        for _ in range(20):
            hm.advance(ps, 1.0)
        elapsed = (time.perf_counter() - t0) / 20
        assert elapsed < 0.05
