"""The declarative scenario layer: round-trip identity, digest stability,
registry resolution, cache-key sensitivity, CLI, and warm-cache replay."""

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.keys import cell_keys
from repro.cache.store import ResultCache
from repro.envs.environments import EnvKind
from repro.experiments import run_fig05
from repro.experiments.common import scenario_makespan
from repro.scenarios import (
    REGISTRY,
    ScenarioSpec,
    TierSizing,
    WorkloadSpec,
    from_json,
    from_mapping,
    from_toml,
    load_scenario,
    run_scenario,
    to_json,
    to_mapping,
    to_toml,
)
from repro.scenarios.cli import main as cli_main
from repro.scenarios.registry import _ensure_catalog, scenario
from repro.util.units import KiB

TINY = 1.0 / 512.0
CHUNK = KiB(256)

# --------------------------------------------------------------------------- #
# strategies: arbitrary-but-valid specs (TOML bare keys for params)
# --------------------------------------------------------------------------- #

_bare_key = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-", min_size=1, max_size=12
)
_param_value = st.one_of(
    st.booleans(),
    st.integers(-(10**9), 10**9),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
_workloads = st.builds(
    WorkloadSpec,
    source=_bare_key,
    scale=st.floats(min_value=1e-6, max_value=2.0),
    instances_per_class=st.dictionaries(
        st.sampled_from(["DL", "DM", "DC", "SC"]), st.integers(0, 64), max_size=4
    ),
    total_instances=st.integers(0, 256),
    wclass=st.sampled_from(["", "DL", "DM", "DC", "SC"]),
    instances=st.integers(0, 64),
    params=st.dictionaries(_bare_key, _param_value, max_size=4),
)
_sizings = st.builds(
    TierSizing,
    dram_fraction=st.one_of(st.none(), st.floats(min_value=0.01, max_value=4.0)),
    dram_per_node=st.one_of(st.none(), st.integers(1, 1 << 44)),
    basis=st.sampled_from(["max-footprint", "footprint", "wss"]),
    pmem_capacity=st.integers(0, 1 << 44),
    cxl_capacity=st.integers(0, 1 << 44),
    floor_chunks=st.integers(0, 64),
)
_specs = st.builds(
    ScenarioSpec,
    name=st.text(min_size=1, max_size=40),
    env=st.sampled_from(list(EnvKind)),
    workload=_workloads,
    sizing=_sizings,
    n_nodes=st.integers(1, 64),
    cores_per_node=st.integers(1, 256),
    chunk_size=st.integers(1, 1 << 30),
    daemon_interval=st.floats(min_value=0.01, max_value=60.0),
    seed=st.integers(0, 2**31 - 1),
    cxl_fraction=st.one_of(st.none(), st.floats(min_value=0.0, max_value=1.0)),
    policy=st.one_of(st.none(), _bare_key),
    stage_images=st.one_of(st.none(), st.booleans()),
    fault_schedule=st.one_of(st.none(), _bare_key),
    fault_seed=st.integers(0, 10**6),
    exclusive=st.booleans(),
    max_time=st.floats(min_value=1.0, max_value=1e12),
)


class TestRoundTripIdentity:
    @settings(max_examples=60, deadline=None)
    @given(spec=_specs)
    def test_toml(self, spec):
        back = from_toml(to_toml(spec))
        assert back == spec
        assert back.digest() == spec.digest()

    @settings(max_examples=60, deadline=None)
    @given(spec=_specs)
    def test_json(self, spec):
        back = from_json(to_json(spec))
        assert back == spec
        assert back.digest() == spec.digest()

    @settings(max_examples=60, deadline=None)
    @given(spec=_specs)
    def test_mapping(self, spec):
        assert from_mapping(to_mapping(spec)) == spec

    def test_files_dispatch_on_suffix(self, tmp_path):
        from repro.scenarios import dump_scenario

        spec = scenario("fig05/IMME")
        for suffix in (".toml", ".json"):
            path = tmp_path / f"spec{suffix}"
            dump_scenario(spec, path)
            assert load_scenario(path) == spec


class TestDigest:
    @settings(max_examples=40, deadline=None)
    @given(spec=_specs, delta=st.integers(1, 100))
    def test_any_seed_edit_moves_the_digest(self, spec, delta):
        assert spec.evolve(seed=spec.seed + delta).digest() != spec.digest()

    def test_nested_field_edits_move_the_digest(self):
        spec = scenario("fig05/IMME")
        edits = [
            spec.evolve(workload=spec.workload.__class__(
                source=spec.workload.source, scale=spec.workload.scale * 2
            )),
            spec.evolve(sizing=TierSizing(dram_fraction=0.26)),
            spec.evolve(n_nodes=spec.n_nodes + 1),
            spec.evolve(policy="pin-dram"),
            spec.evolve(exclusive=True),
        ]
        digests = {spec.digest()} | {e.digest() for e in edits}
        assert len(digests) == len(edits) + 1  # all distinct

    def test_stable_across_processes(self):
        spec = scenario("fig05/IMME")
        code = (
            "from repro.scenarios.registry import scenario;"
            "print(scenario('fig05/IMME').digest())"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        env["PYTHONHASHSEED"] = "random"
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, env=env
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == spec.digest()


class TestRegistry:
    def test_catalog_names_every_paper_experiment(self):
        _ensure_catalog()
        expected = {
            "fig01", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10",
            "fig11", "cold-pages", "validation", "ablations",
            "ext-colocation", "ext-decomposition", "ext-failures",
            "ext-open-system", "ext-predictor", "ext-resilience",
            "ext-shared-inputs", "ext-utilization",
        }
        assert expected <= set(REGISTRY.family_names())

    def test_family_resolution(self):
        specs = REGISTRY.resolve("fig05")
        assert [s.member for s in specs] == ["IE", "CBE", "TME", "IMME"]

    def test_member_resolution(self):
        spec = scenario("fig05/IMME")
        assert spec.env is EnvKind.IMME
        assert REGISTRY.resolve("fig05/IMME") == [spec]

    def test_single_member_family_resolves_bare(self):
        assert scenario("cold-pages").env is EnvKind.IE

    def test_multi_member_family_requires_member(self):
        with pytest.raises(KeyError, match="pick a member"):
            REGISTRY.scenario("fig05")

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            scenario("fig99/IMME")

    def test_verify_round_trips_everything(self):
        names = REGISTRY.verify()
        assert len(names) == len(set(names)) >= len(REGISTRY)


class TestCacheKeys:
    def test_scenario_digest_folds_into_content_key_only(self):
        a = scenario("fig05/IE")
        b = a.evolve(seed=a.seed + 1)
        key_a = cell_keys(scenario_makespan, {}, seed=0, scenario=a)
        key_b = cell_keys(scenario_makespan, {}, seed=0, scenario=b)
        assert key_a == cell_keys(scenario_makespan, {}, seed=0, scenario=a)
        assert key_a.cell_id == key_b.cell_id  # same question asked...
        assert key_a.content_key != key_b.content_key  # ...different world

    def test_spec_kwargs_are_canonicalizable(self):
        spec = scenario("fig05/IE")
        key = cell_keys(scenario_makespan, {"scenario": spec}, seed=0, scenario=spec)
        assert key.cell_id and key.content_key


class TestHarnessDiscipline:
    def test_no_direct_environment_config_in_harnesses(self):
        """Every harness must build environments through ScenarioSpecs."""
        import repro.experiments as exp

        pkg = Path(exp.__file__).parent
        offenders = [
            p.name
            for p in sorted(pkg.glob("*.py"))
            if "EnvironmentConfig(" in p.read_text(encoding="utf-8")
        ]
        assert offenders == []


_TINY_TOML = f"""\
name = "t/tiny"
env = "IMME"
chunk_size = {CHUNK}

[workload]
source = "class-ensemble"
scale = {TINY!r}
wclass = "DM"
instances = 2

[sizing]
dram_fraction = 0.5
"""


class TestRunScenario:
    def test_outcome_carries_digest_and_seed(self):
        spec = from_toml(_TINY_TOML).evolve(seed=3)
        out = run_scenario(spec)
        assert out.completed == 2 and out.failed == 0
        assert out.makespan > 0.0
        assert out.digest == spec.digest()
        assert out.seed == 3


class TestCli:
    def test_list_names_families_and_digests(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out and "digest=" in out

    def test_show_emits_toml(self, capsys):
        assert cli_main(["show", "fig05/IMME"]) == 0
        out = capsys.readouterr().out
        assert 'name = "fig05/IMME"' in out
        assert from_toml(out) == scenario("fig05/IMME")

    def test_verify(self, capsys):
        assert cli_main(["verify"]) == 0
        assert "verified" in capsys.readouterr().out

    def test_run_spec_file(self, tmp_path, capsys):
        path = tmp_path / "tiny.toml"
        path.write_text(_TINY_TOML, encoding="utf-8")
        assert cli_main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "t/tiny" in out and "digest=" in out


class TestWarmCacheReplay:
    def test_fig05_replays_identically_with_zero_cells_executed(self, tmp_path):
        kwargs = dict(
            scale=TINY, instances_per_class=1, chunk_size=CHUNK, seed=0
        )
        cold = ResultCache(tmp_path)
        first = run_fig05(cache=cold, **kwargs)
        assert cold.stats.hits == 0 and cold.stats.misses == 4

        warm = ResultCache(tmp_path)
        second = run_fig05(cache=warm, **kwargs)
        assert warm.stats.hits == 4 and warm.stats.misses == 0
        assert second.series == first.series
        assert second.provenance == first.provenance
        assert second.to_csv() == first.to_csv()
