"""Ensemble and batch-construction tests."""

import pytest

from repro.util.rng import RngFactory
from repro.workflows.ensembles import make_ensemble, paper_batch, scaled_mix
from repro.workflows.library import PAPER_MIX_FIG10
from repro.workflows.task import WorkloadClass

from conftest import simple_task


class TestMakeEnsemble:
    def test_member_count_and_names(self):
        members = make_ensemble(simple_task("base"), 5)
        assert len(members) == 5
        assert [m.name for m in members] == [f"base-{i}" for i in range(5)]

    def test_jitter_within_bounds(self):
        base = simple_task("base")
        members = make_ensemble(base, 20, time_jitter=0.1, size_jitter=0.1)
        for m in members:
            assert 0.9 * base.footprint <= m.footprint <= 1.1 * base.footprint + 1
            ratio = m.ideal_duration / base.ideal_duration
            assert 0.9 <= ratio <= 1.1

    def test_members_actually_vary(self):
        members = make_ensemble(simple_task("base"), 10)
        assert len({m.footprint for m in members}) > 1

    def test_deterministic_given_factory_seed(self):
        a = make_ensemble(simple_task("b"), 5, rng_factory=RngFactory(3))
        b = make_ensemble(simple_task("b"), 5, rng_factory=RngFactory(3))
        assert [m.footprint for m in a] == [m.footprint for m in b]

    def test_zero_jitter_gives_clones(self):
        members = make_ensemble(simple_task("b"), 3, time_jitter=0.0, size_jitter=0.0)
        assert len({m.footprint for m in members}) == 1


class TestScaledMix:
    def test_preserves_ratio_roughly(self):
        mix = scaled_mix(PAPER_MIX_FIG10, 40)
        assert mix[WorkloadClass.DM] > mix[WorkloadClass.DL]
        assert sum(mix.values()) == pytest.approx(40, abs=4)

    def test_every_class_kept(self):
        mix = scaled_mix(PAPER_MIX_FIG10, 4)
        assert all(v >= 1 for v in mix.values())

    def test_rejects_empty_mix(self):
        with pytest.raises(Exception):
            scaled_mix({}, 10)


class TestPaperBatch:
    def test_batch_size(self):
        batch = paper_batch(24, scale=0.01)
        assert len(batch) == pytest.approx(24, abs=3)

    def test_names_unique(self):
        batch = paper_batch(24, scale=0.01)
        assert len({s.name for s in batch}) == len(batch)

    def test_dm_dominates(self):
        batch = paper_batch(40, scale=0.01)
        counts = {}
        for s in batch:
            counts[s.wclass] = counts.get(s.wclass, 0) + 1
        assert counts[WorkloadClass.DM] == max(counts.values())

    def test_custom_mix(self):
        batch = paper_batch(
            10, scale=0.01, mix={WorkloadClass.DL: 1, WorkloadClass.SC: 1}
        )
        classes = {s.wclass for s in batch}
        assert classes == {WorkloadClass.DL, WorkloadClass.SC}
