"""Movement-policy branch coverage: PMem→CXL rebalancing, pull-up order,
and lazy package exports."""

import numpy as np
import pytest

from repro.core.flags import MemFlag
from repro.core.movement import IntelligentPageMovement, MovementConfig
from repro.core.replacement import PageReplacementPolicy
from repro.memory.system import NodeMemorySystem
from repro.memory.tiers import CXL, DRAM, PMEM, SWAP
from repro.policies.base import PolicyContext
from repro.util.units import MiB

from conftest import CHUNK, make_pageset, small_specs


def setup(**spec_kw):
    node = NodeMemorySystem(small_specs(**spec_kw), "n")
    ctx = PolicyContext(memory=node, rng=np.random.default_rng(0))
    owner_flags = lambda o: MemFlag.NONE
    movement = IntelligentPageMovement(
        owner_flags, PageReplacementPolicy(owner_flags)
    )
    return node, ctx, movement


class TestPmemCxlRebalance:
    def test_hot_pmem_spills_to_cxl_when_dram_full(self):
        """§III-C4: pages move 'between persistent and CXL-attached memory
        tiers based on the available page access heatmaps' — with DRAM
        full, hot PMem pages still escape to the faster CXL tier."""
        node, ctx, movement = setup(dram=MiB(1))
        filler = make_pageset(node, "filler", MiB(1))
        node.place(filler, np.arange(filler.n_chunks), DRAM)
        filler.temperature[:] = 10.0  # DRAM full of genuinely hot pages
        filler.pinned[:] = True       # and immovable
        ps = make_pageset(node, "a", MiB(2))
        node.place(ps, np.arange(ps.n_chunks), PMEM)
        ps.temperature[:] = 5.0  # hot on slow PMem
        movement.tick(ctx, promote_budget_bytes=MiB(4))
        assert ps.bytes_in(CXL) > 0
        assert ps.bytes_in(PMEM) < MiB(2)
        node.validate()

    def test_pull_up_prefers_dram_then_cxl(self):
        node, ctx, movement = setup(dram=MiB(1))
        ps = make_pageset(node, "a", MiB(2))
        node.place(ps, np.arange(ps.n_chunks), SWAP)
        ps.temperature[:] = 5.0
        movement.tick(ctx, promote_budget_bytes=MiB(4))
        # DRAM holds what fits; the remainder lands on CXL, none stays in swap
        assert ps.bytes_in(DRAM) == pytest.approx(MiB(1), abs=2 * CHUNK)
        assert ps.bytes_in(SWAP) == 0
        node.validate()


class TestLazyExports:
    def test_top_level_getattr(self):
        import repro

        assert repro.TieredMemoryManager.__name__ == "TieredMemoryManager"
        assert repro.EnvKind.IMME.name == "IMME"
        with pytest.raises(AttributeError):
            repro.NotAThing

    def test_core_getattr(self):
        import repro.core as core

        assert core.MemFlag.LAT
        with pytest.raises(AttributeError):
            core.NotAThing

    def test_dir_lists_exports(self):
        import repro

        names = dir(repro)
        assert "Environment" in names
        assert "paper_workload_suite" in names
