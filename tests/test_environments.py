"""Environment-factory and end-to-end environment behaviour tests."""

import pytest

from repro.core.manager import TieredMemoryManager
from repro.envs.environments import EnvKind, Environment, EnvironmentConfig, make_environment
from repro.memory.tiers import CXL, DRAM, PMEM
from repro.policies.linux import LinuxSwapPolicy
from repro.policies.tpp import TieredDemandPolicy
from repro.util.units import KiB, MiB

from conftest import simple_task

CHUNK = KiB(64)


def env_of(kind, dram=MiB(16), **kw):
    return make_environment(kind, dram_capacity=dram, chunk_size=CHUNK, **kw)


class TestConstruction:
    def test_ie_and_cbe_have_no_tiers(self):
        for kind in (EnvKind.IE, EnvKind.CBE):
            env = env_of(kind)
            node = env.topology.node(0)
            assert node.capacity(PMEM) == 0
            assert node.capacity(CXL) == 0
            assert isinstance(env.agents[0].policy, LinuxSwapPolicy)

    def test_tme_policy_and_tiers(self):
        env = env_of(EnvKind.TME)
        node = env.topology.node(0)
        assert node.capacity(CXL) > 0
        assert isinstance(env.agents[0].policy, TieredDemandPolicy)

    def test_imme_gets_manager_and_shared_memory(self):
        env = env_of(EnvKind.IMME)
        assert isinstance(env.agents[0].policy, TieredMemoryManager)
        assert env.shared_memory is not None
        assert env.config.stage_images

    def test_policy_factory_override(self):
        env = env_of(EnvKind.TME, policy_factory=lambda s: LinuxSwapPolicy())
        assert isinstance(env.agents[0].policy, LinuxSwapPolicy)

    def test_policies_are_per_node(self):
        env = env_of(EnvKind.IMME, n_nodes=2)
        assert env.agents[0].policy is not env.agents[1].policy

    def test_cxl_fraction_passes_through(self):
        env = env_of(EnvKind.TME, cxl_fraction=0.3)
        assert env.agents[0].policy.cxl_fraction == 0.3

    def test_name(self):
        assert env_of(EnvKind.IMME).name == "IMME"


class TestRunBatch:
    def test_batch_completes_and_reports(self):
        env = env_of(EnvKind.IMME, dram=MiB(32))
        specs = [simple_task(f"t{i}", footprint=MiB(1), base_time=1.0) for i in range(4)]
        metrics = env.run_batch(specs)
        assert len(metrics.completed()) == 4
        assert metrics.makespan() > 0
        env.stop()

    def test_imme_stages_images_before_launch(self):
        env = env_of(EnvKind.IMME, dram=MiB(32))
        specs = [simple_task(f"t{i}", footprint=MiB(1), base_time=1.0) for i in range(3)]
        env.run_batch(specs)
        assert env.containers.cxl_reads >= 1
        assert env.containers.network_pulls == 0

    def test_non_imme_pulls_over_network(self):
        env = env_of(EnvKind.CBE, dram=MiB(32))
        specs = [simple_task("t0", footprint=MiB(1), base_time=1.0)]
        env.run_batch(specs)
        assert env.containers.network_pulls == 1

    def test_node_traffic_rollup(self):
        env = env_of(EnvKind.CBE, dram=MiB(2))
        specs = [simple_task("t0", footprint=MiB(4), base_time=1.0)]
        env.run_batch(specs)
        traffic = env.node_traffic()
        assert traffic["swapped_out_bytes"] > 0


class TestMakeEnvironmentDefaults:
    def test_tme_defaults_pmem_and_cxl(self):
        env = env_of(EnvKind.TME, dram=MiB(8))
        node = env.topology.node(0)
        assert node.capacity(PMEM) == MiB(16)
        assert node.capacity(CXL) == MiB(512)

    def test_explicit_capacities_respected(self):
        env = make_environment(
            EnvKind.TME,
            dram_capacity=MiB(8),
            pmem_capacity=MiB(4),
            cxl_capacity=MiB(64),
            chunk_size=CHUNK,
        )
        node = env.topology.node(0)
        assert node.capacity(PMEM) == MiB(4)
        assert node.capacity(CXL) == MiB(64)

    def test_config_validation(self):
        with pytest.raises(Exception):
            EnvironmentConfig(kind=EnvKind.IE, n_nodes=0, dram_capacity=MiB(1))
