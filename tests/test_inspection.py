"""Inspection-API tests: meminfo, placement summaries, statistical compare."""

import numpy as np
import pytest

from repro.analysis.stats import Comparison, ReplicationResult, compare
from repro.memory.tiers import CXL, DRAM, SWAP
from repro.util.units import MiB

from conftest import CHUNK, make_pageset


class TestMeminfo:
    def test_snapshot_fields(self, node):
        ps = make_pageset(node, "a", MiB(2))
        node.place(ps, np.arange(ps.n_chunks), DRAM)
        info = node.meminfo()
        assert info["dram_total"] == node.capacity(DRAM)
        assert info["dram_used"] == MiB(2)
        assert info["dram_free"] == node.capacity(DRAM) - MiB(2)
        assert info["dram_rss"] == MiB(2)
        assert info["pagesets"] == 1
        assert info["page_cache"] == 0

    def test_page_cache_reported(self, node):
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(ps.n_chunks), CXL)
        node.add_page_cache_shadow(ps, np.arange(ps.n_chunks))
        info = node.meminfo()
        assert info["page_cache"] == MiB(1)
        assert info["dram_rss"] == 0
        assert info["dram_used"] == MiB(1)  # shadows occupy DRAM

    def test_covers_every_tier(self, node):
        info = node.meminfo()
        for tier in ("dram", "pmem", "cxl", "swap"):
            assert f"{tier}_total" in info
            assert f"{tier}_free" in info


class TestPlacementSummary:
    def test_per_region_breakdown(self, node):
        ps = make_pageset(node, "a", MiB(2))
        ps.region[: ps.n_chunks // 2] = 0
        ps.region[ps.n_chunks // 2:] = 1
        node.place(ps, np.arange(ps.n_chunks // 2), DRAM)
        node.place(ps, np.arange(ps.n_chunks // 2, ps.n_chunks), CXL)
        ps.pinned[:2] = True
        summary = ps.placement_summary()
        assert summary[0]["dram"] == ps.n_chunks // 2
        assert summary[0]["pinned"] == 2
        assert summary[1]["cxl"] == ps.n_chunks // 2
        assert summary[1]["pinned"] == 0

    def test_shadow_counts(self, node):
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(ps.n_chunks), DRAM)
        node.swap_out(ps, np.arange(4))
        node.add_page_cache_shadow(ps, np.arange(4))
        summary = ps.placement_summary()
        assert summary[0]["shadowed"] == 4
        assert summary[0]["swap"] == 4

    def test_unregioned_chunks_excluded(self, node):
        ps = make_pageset(node, "a", MiB(1))
        ps.region[:] = -1
        assert ps.placement_summary() == {}


class TestCompare:
    def test_significant_difference(self):
        base = ReplicationResult("b", (10.0, 10.1, 9.9, 10.0))
        fast = ReplicationResult("f", (5.0, 5.1, 4.9, 5.0))
        c = compare(base, fast)
        assert isinstance(c, Comparison)
        assert c.improvement == pytest.approx(0.5, abs=0.01)
        assert c.significant
        assert c.p_value < 0.001

    def test_identical_samples_not_significant(self):
        a = ReplicationResult("a", (10.0, 10.0, 10.0))
        b = ReplicationResult("b", (10.0, 10.0, 10.0))
        c = compare(a, b)
        assert not c.significant
        assert c.p_value == 1.0

    def test_deterministic_zero_variance_difference(self):
        a = ReplicationResult("a", (10.0, 10.0))
        b = ReplicationResult("b", (8.0, 8.0))
        c = compare(a, b)
        assert c.significant
        assert c.p_value == 0.0

    def test_single_run_degenerate(self):
        a = ReplicationResult("a", (10.0,))
        b = ReplicationResult("b", (9.0,))
        c = compare(a, b)
        assert c.p_value in (0.0, 1.0)

    def test_overlapping_noise_not_significant(self):
        rng = np.random.default_rng(0)
        a = ReplicationResult("a", tuple(10 + rng.normal(0, 1, 6)))
        b = ReplicationResult("b", tuple(10 + rng.normal(0, 1, 6)))
        assert not compare(a, b).significant
