"""Parallel sweep layer: executor contract, SweepSpec seed derivation,
and determinism of parallel vs sequential experiment runs."""

import os

import pytest

from repro.experiments.common import SweepSpec, sweep
from repro.experiments.runner import run_all
from repro.parallel import (
    available_parallelism,
    map_ordered,
    resolve_jobs,
    supports_fork,
)
from repro.util.rng import derive_seed

#: fast experiments used for whole-suite determinism checks
FAST_SUBSET = ["validation", "cold-pages"]


def square(x):
    return x * x


def whoami(_):
    return os.getpid()


def boom(x):
    raise ValueError(f"cell {x} exploded")


def seeded_draw(seed: int, scale: float = 1.0):
    import numpy as np

    return float(np.random.default_rng(seed).random()) * scale


class TestExecutor:
    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) == available_parallelism()
        assert resolve_jobs(-1) == available_parallelism()

    def test_map_ordered_sequential(self):
        assert map_ordered(square, [3, 1, 2], jobs=1) == [9, 1, 4]

    @pytest.mark.skipif(not supports_fork(), reason="no fork on this platform")
    def test_map_ordered_parallel_preserves_order(self):
        assert map_ordered(square, list(range(20)), jobs=4) == [i * i for i in range(20)]

    @pytest.mark.skipif(not supports_fork(), reason="no fork on this platform")
    def test_parallel_runs_in_worker_processes(self):
        pids = map_ordered(whoami, [0, 1, 2, 3], jobs=2)
        assert os.getpid() not in pids

    def test_single_item_stays_in_process(self):
        assert map_ordered(whoami, [0], jobs=8) == [os.getpid()]

    def test_empty_items(self):
        assert map_ordered(square, [], jobs=4) == []

    @pytest.mark.skipif(not supports_fork(), reason="no fork on this platform")
    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="exploded"):
            map_ordered(boom, [1, 2, 3], jobs=2)

    @pytest.mark.skipif(not supports_fork(), reason="no fork on this platform")
    def test_raising_cell_reaps_the_pool(self):
        import multiprocessing
        import time

        with pytest.raises(ValueError, match="exploded"):
            map_ordered(boom, list(range(8)), jobs=2)
        # the terminate-on-error path must leave no live workers behind
        deadline = time.monotonic() + 10
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert multiprocessing.active_children() == []


class TestSweepSpec:
    def test_cell_seed_is_stable_and_name_scoped(self):
        spec = SweepSpec("s", base_seed=7)
        assert spec.cell_seed("a") == derive_seed(7, "s/a")
        assert spec.cell_seed("a") == SweepSpec("s", base_seed=7).cell_seed("a")
        assert spec.cell_seed("a") != spec.cell_seed("b")
        assert spec.cell_seed("a") != SweepSpec("other", base_seed=7).cell_seed("a")

    def test_duplicate_keys_rejected(self):
        spec = SweepSpec("s")
        spec.add("a", square, x=1)
        with pytest.raises(Exception, match="duplicate"):
            spec.add("a", square, x=2)

    def test_add_seeded_injects_derived_seed(self):
        spec = SweepSpec("replicates", base_seed=3)
        for i in range(4):
            spec.add_seeded(f"r{i}", seeded_draw)
        results = sweep(spec)
        assert list(results) == [f"r{i}" for i in range(4)]
        assert len(set(results.values())) == 4  # distinct streams
        assert results == sweep(spec)  # and reproducible

    @pytest.mark.skipif(not supports_fork(), reason="no fork on this platform")
    def test_sweep_parallel_matches_sequential(self):
        spec = SweepSpec("replicates", base_seed=11)
        for i in range(6):
            spec.add_seeded(f"r{i}", seeded_draw, scale=2.0)
        assert sweep(spec, jobs=4) == sweep(spec, jobs=1)


class TestRunAllParallel:
    @pytest.mark.skipif(not supports_fork(), reason="no fork on this platform")
    def test_jobs4_matches_jobs1(self):
        # cache off: this asserts *live* parallel-vs-sequential determinism
        # (cache-on equivalence is covered by tests/test_cache.py)
        par = run_all(FAST_SUBSET, verbose=False, jobs=4, cache_dir=None)
        seq = run_all(FAST_SUBSET, verbose=False, jobs=1, cache_dir=None)
        assert list(par) == list(seq)
        for name in seq:
            assert par[name].xlabels == seq[name].xlabels
            assert par[name].series == seq[name].series
            assert par[name].notes == seq[name].notes
            assert par[name].to_table() == seq[name].to_table()

    def test_unknown_name_rejected_before_fanout(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_all(["fig99"], verbose=False, jobs=4)
