"""Workflow-DAG tests: construction, cycles, traversal, critical path."""

import pytest

from repro.util.errors import WorkflowError
from repro.workflows.dag import (
    Workflow,
    chain_workflow,
    diamond_workflow,
    fan_out_workflow,
)

from conftest import simple_task


class TestConstruction:
    def test_add_tasks_with_dependencies(self):
        wf = Workflow("w")
        wf.add_task(simple_task("a"))
        wf.add_task(simple_task("b"), after=["a"])
        assert wf.dependencies("b") == ("a",)
        assert wf.dependents("a") == ("b",)
        assert len(wf) == 2

    def test_duplicate_task_rejected(self):
        wf = Workflow("w")
        wf.add_task(simple_task("a"))
        with pytest.raises(WorkflowError, match="duplicate"):
            wf.add_task(simple_task("a"))

    def test_unknown_dependency_rejected(self):
        wf = Workflow("w")
        with pytest.raises(WorkflowError):
            wf.add_task(simple_task("b"), after=["ghost"])

    def test_cycle_via_add_dependency_rejected(self):
        wf = Workflow("w")
        wf.add_task(simple_task("a"))
        wf.add_task(simple_task("b"), after=["a"])
        with pytest.raises(WorkflowError, match="cycle"):
            wf.add_dependency("b", "a")
        # graph unchanged after the failed edge
        assert wf.dependencies("a") == ()

    def test_contains_and_spec(self):
        wf = Workflow("w")
        spec = simple_task("a")
        wf.add_task(spec)
        assert "a" in wf
        assert wf.spec("a") is spec
        with pytest.raises(WorkflowError):
            wf.spec("nope")

    def test_empty_workflow_invalid(self):
        with pytest.raises(WorkflowError):
            Workflow("w").validate()


class TestTraversal:
    def build_diamond(self):
        return diamond_workflow(
            "d",
            simple_task("pre"),
            [simple_task("b1"), simple_task("b2")],
            simple_task("post"),
        )

    def test_roots(self):
        wf = self.build_diamond()
        assert wf.roots() == ("pre",)

    def test_topological_order_respects_edges(self):
        wf = self.build_diamond()
        order = wf.topological_order()
        assert order.index("pre") < order.index("b1")
        assert order.index("b2") < order.index("post")

    def test_stages(self):
        wf = self.build_diamond()
        assert wf.stages() == [["pre"], ["b1", "b2"], ["post"]]

    def test_critical_path(self):
        wf = self.build_diamond()  # all tasks 10s
        assert wf.critical_path_time() == pytest.approx(30.0)

    def test_total_footprint(self):
        wf = chain_workflow("c", [simple_task("a"), simple_task("b")])
        assert wf.total_footprint == sum(s.footprint for s in wf.tasks())


class TestShapeHelpers:
    def test_chain(self):
        wf = chain_workflow("c", [simple_task(f"t{i}") for i in range(4)])
        assert wf.stages() == [["t0"], ["t1"], ["t2"], ["t3"]]

    def test_fan_out(self):
        wf = fan_out_workflow(
            "f", simple_task("src"), [simple_task(f"m{i}") for i in range(3)]
        )
        assert wf.roots() == ("src",)
        assert set(wf.dependents("src")) == {"m0", "m1", "m2"}

    def test_chain_critical_path_is_sum(self):
        specs = [simple_task(f"t{i}", base_time=5.0) for i in range(3)]
        wf = chain_workflow("c", specs)
        assert wf.critical_path_time() == pytest.approx(15.0)
