"""Container memory-cgroup tests: charging, OOM kills, CXL exemption."""

from dataclasses import replace

import pytest

from repro.containers.cgroup import MemoryCgroup, OomKill
from repro.core.flags import MemFlag
from repro.envs.environments import EnvKind, make_environment
from repro.util.units import KiB, MiB
from repro.workflows.library import scientific_task
from repro.workflows.task import TaskSpec, WorkloadClass

from conftest import simple_task

CHUNK = KiB(64)


class TestMemoryCgroup:
    def test_charge_within_limit(self):
        cg = MemoryCgroup("c", limit=MiB(4))
        cg.charge(MiB(3))
        assert cg.charged == MiB(3)
        assert cg.peak == MiB(3)
        assert cg.headroom == MiB(1)

    def test_overrun_raises_oom(self):
        cg = MemoryCgroup("c", limit=MiB(4))
        cg.charge(MiB(3))
        with pytest.raises(OomKill, match="exceeded its memory limit"):
            cg.charge(MiB(2))
        assert cg.oom_kills == 1
        assert cg.charged == MiB(3)  # the failing charge did not land

    def test_uncharge(self):
        cg = MemoryCgroup("c", limit=MiB(4))
        cg.charge(MiB(4))
        cg.uncharge(MiB(2))
        cg.charge(MiB(2))  # fits again
        assert cg.peak == MiB(4)

    def test_uncapped(self):
        cg = MemoryCgroup("c", limit=None)
        cg.charge(MiB(1000))
        assert cg.headroom is None

    def test_uncharge_never_negative(self):
        cg = MemoryCgroup("c")
        cg.uncharge(MiB(1))
        assert cg.charged == 0

    def test_zero_charge_noop(self):
        cg = MemoryCgroup("c", limit=MiB(1))
        cg.charge(0)
        assert cg.charged == 0

    def test_invalid_limit(self):
        with pytest.raises(Exception):
            MemoryCgroup("c", limit=0)


class TestSpecValidation:
    def test_limit_below_footprint_rejected(self):
        with pytest.raises(Exception, match="memory_limit"):
            replace(simple_task(footprint=MiB(4)), memory_limit=MiB(1))

    def test_limit_at_footprint_ok(self):
        spec = replace(simple_task(footprint=MiB(4)), memory_limit=MiB(4))
        assert spec.memory_limit == MiB(4)


class TestEndToEndEnforcement:
    def _capped_sc(self, margin: float) -> TaskSpec:
        spec = scientific_task(scale=1 / 512, request_extra=True)
        return replace(spec, memory_limit=int(spec.footprint * (1 + margin)))

    def test_oom_kill_without_tiered_memory(self):
        spec = self._capped_sc(margin=0.05)
        env = make_environment(EnvKind.CBE, dram_capacity=spec.footprint * 2, chunk_size=CHUNK)
        metrics = env.run_batch([spec], max_time=1e6)
        tm = metrics.get(spec.name)
        assert tm.failed
        assert "memory limit" in tm.failure_reason
        env.stop()

    def test_cxl_expansion_escapes_the_cap(self):
        spec = self._capped_sc(margin=0.05)
        env = make_environment(EnvKind.IMME, dram_capacity=spec.footprint * 2, chunk_size=CHUNK)
        metrics = env.run_batch([spec], max_time=1e6)
        assert metrics.get(spec.name).done
        env.stop()

    def test_generous_limit_never_fires(self):
        spec = self._capped_sc(margin=0.50)
        env = make_environment(EnvKind.CBE, dram_capacity=spec.footprint * 2, chunk_size=CHUNK)
        metrics = env.run_batch([spec], max_time=1e6)
        assert metrics.get(spec.name).done
        env.stop()

    def test_memory_released_after_oom_kill(self):
        spec = self._capped_sc(margin=0.05)
        env = make_environment(EnvKind.CBE, dram_capacity=spec.footprint * 2, chunk_size=CHUNK)
        env.run_batch([spec], max_time=1e6)
        for node in env.topology.nodes:
            node.validate()
            assert node.rss(0) == 0  # everything returned after the kill
        env.stop()
