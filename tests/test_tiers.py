"""Tier-spec tests."""

import pytest

from repro.memory.tiers import (
    CXL,
    DRAM,
    MEMORY_TIERS,
    NUM_TIERS,
    PMEM,
    SWAP,
    TierKind,
    TierSpec,
    constrained_tier_specs,
    default_tier_specs,
    ideal_tier_specs,
)
from repro.util.errors import ConfigurationError
from repro.util.units import GBps, GiB, TiB, ns


class TestTierKind:
    def test_indices_are_stable(self):
        assert int(DRAM) == 0
        assert int(PMEM) == 1
        assert int(CXL) == 2
        assert int(SWAP) == 3

    def test_num_tiers(self):
        assert NUM_TIERS == 4

    def test_memory_tiers_exclude_swap(self):
        assert SWAP not in MEMORY_TIERS
        assert MEMORY_TIERS == (DRAM, PMEM, CXL)


class TestTierSpec:
    def test_valid_spec(self):
        s = TierSpec(DRAM, GiB(1), ns(80), GBps(100), GBps(80))
        assert s.name == "dram"
        assert s.byte_addressable

    def test_blended_bandwidth(self):
        s = TierSpec(DRAM, GiB(1), ns(80), GBps(90), GBps(30))
        assert s.bandwidth == pytest.approx(GBps(70))

    def test_zero_capacity_allowed(self):
        s = TierSpec(PMEM, 0, ns(300), GBps(30), GBps(8))
        assert s.capacity == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            TierSpec(DRAM, -1, ns(80), GBps(100), GBps(80))

    def test_zero_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            TierSpec(DRAM, GiB(1), 0.0, GBps(100), GBps(80))

    def test_with_capacity_copies(self):
        s = TierSpec(CXL, GiB(1), ns(140), GBps(30), GBps(25))
        s2 = s.with_capacity(GiB(2))
        assert s2.capacity == GiB(2)
        assert s.capacity == GiB(1)
        assert s2.latency == s.latency


class TestDefaultSpecs:
    def test_covers_all_tiers(self):
        specs = default_tier_specs()
        assert set(specs) == set(TierKind)

    def test_testbed_latencies(self):
        specs = default_tier_specs()
        assert specs[DRAM].latency == pytest.approx(ns(80))
        assert specs[CXL].latency == pytest.approx(ns(140))

    def test_latency_ordering(self):
        specs = default_tier_specs()
        assert specs[DRAM].latency < specs[CXL].latency < specs[PMEM].latency
        assert specs[PMEM].latency < specs[SWAP].latency

    def test_paper_capacities(self):
        specs = default_tier_specs()
        assert specs[DRAM].capacity == GiB(512)
        assert specs[PMEM].capacity == TiB(1)

    def test_cxl_effectively_unlimited(self):
        specs = default_tier_specs()
        assert specs[CXL].capacity >= TiB(32)

    def test_swap_not_byte_addressable(self):
        assert not default_tier_specs()[SWAP].byte_addressable


class TestConstrainedSpecs:
    def test_cbe_has_no_tiered_memory(self):
        specs = constrained_tier_specs(GiB(64))
        assert specs[PMEM].capacity == 0
        assert specs[CXL].capacity == 0
        assert specs[DRAM].capacity == GiB(64)
        assert specs[SWAP].capacity > 0

    def test_tme_keeps_requested_tiers(self):
        specs = constrained_tier_specs(GiB(64), pmem_capacity=GiB(128), cxl_capacity=TiB(1))
        assert specs[PMEM].capacity == GiB(128)
        assert specs[CXL].capacity == TiB(1)

    def test_ideal_specs_large_dram(self):
        specs = ideal_tier_specs()
        assert specs[DRAM].capacity == TiB(8)
        assert specs[CXL].capacity == 0
