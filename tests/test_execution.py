"""Task-execution and node-agent integration tests on a single node."""

import numpy as np
import pytest

from repro.core.flags import MemFlag
from repro.core.manager import TieredMemoryManager
from repro.memory.system import NodeMemorySystem
from repro.memory.tiers import DRAM, SWAP
from repro.policies.linux import LinuxSwapPolicy
from repro.runtime.execution import TaskState
from repro.runtime.node_agent import NodeAgent
from repro.util.units import GBps, MiB
from repro.workflows.patterns import HotColdPattern
from repro.workflows.task import DynamicRequest, TaskPhase, TaskSpec, WorkloadClass

from conftest import CHUNK, simple_task, small_specs


def make_agent(engine, metrics, policy=None, **spec_kw):
    specs = small_specs(**spec_kw)
    node = NodeMemorySystem(specs, "n0")
    policy = policy if policy is not None else LinuxSwapPolicy(scan_noise=0.0)
    return NodeAgent(
        engine, node, policy, metrics, cores=8, chunk_size=CHUNK, validate_invariants=True
    )


class TestLifecycle:
    def test_task_runs_to_completion_at_ideal_speed(self, engine, metrics):
        agent = make_agent(engine, metrics)
        spec = simple_task("t", footprint=MiB(1), base_time=10.0)
        te = agent.start_task(spec)
        engine.run(until=100.0)
        assert te.state is TaskState.DONE
        tm = metrics.get("t")
        # all-DRAM fit: finishes in ~base_time
        assert tm.finished_at == pytest.approx(10.0, rel=0.05)

    def test_memory_released_after_completion(self, engine, metrics):
        agent = make_agent(engine, metrics)
        te = agent.start_task(simple_task("t", footprint=MiB(2)))
        engine.run(until=100.0)
        assert agent.memory.used(DRAM) == 0
        assert agent.memory.get_pageset("t") is None

    def test_cores_accounting(self, engine, metrics):
        agent = make_agent(engine, metrics)
        agent.start_task(simple_task("t", cores=3))
        assert agent.cores_free == 5
        engine.run(until=100.0)
        assert agent.cores_free == 8

    def test_duplicate_name_rejected(self, engine, metrics):
        agent = make_agent(engine, metrics)
        agent.start_task(simple_task("t"))
        with pytest.raises(Exception):
            agent.start_task(simple_task("t"))

    def test_no_cores_rejected(self, engine, metrics):
        agent = make_agent(engine, metrics)
        with pytest.raises(Exception):
            agent.start_task(simple_task("t", cores=99))

    def test_on_finish_callback(self, engine, metrics):
        agent = make_agent(engine, metrics)
        done = []
        agent.start_task(simple_task("t"), on_finish=lambda te: done.append(te.spec.name))
        engine.run(until=100.0)
        assert done == ["t"]

    def test_multi_phase_durations_recorded(self, engine, metrics):
        agent = make_agent(engine, metrics)
        agent.start_task(simple_task("t", n_phases=3, base_time=5.0))
        engine.run(until=100.0)
        tm = metrics.get("t")
        assert len(tm.phase_durations) == 3
        assert sum(tm.phase_durations) == pytest.approx(15.0, rel=0.05)


class TestContention:
    def test_colocated_bandwidth_contention_slows_tasks(self, engine, metrics):
        agent = make_agent(engine, metrics)
        # two tasks each demanding more than half the DRAM bandwidth
        for i in range(2):
            agent.start_task(
                simple_task(
                    f"t{i}",
                    footprint=MiB(1),
                    base_time=10.0,
                    lat_frac=0.0,
                    bw_frac=0.8,
                    demand_bandwidth=GBps(80.0),
                )
            )
        engine.run(until=200.0)
        for i in range(2):
            tm = metrics.get(f"t{i}")
            assert tm.execution_time > 11.0  # visibly slower than ideal

    def test_solo_task_not_slowed(self, engine, metrics):
        agent = make_agent(engine, metrics)
        agent.start_task(
            simple_task(
                "solo", base_time=10.0, lat_frac=0.0, bw_frac=0.8,
                demand_bandwidth=GBps(80.0),
            )
        )
        engine.run(until=100.0)
        assert metrics.get("solo").execution_time == pytest.approx(10.0, rel=0.05)

    def test_rates_recover_when_rival_finishes(self, engine, metrics):
        agent = make_agent(engine, metrics)
        agent.start_task(
            simple_task("short", base_time=5.0, bw_frac=0.8, lat_frac=0.0,
                        demand_bandwidth=GBps(80)))
        agent.start_task(
            simple_task("long", base_time=20.0, bw_frac=0.8, lat_frac=0.0,
                        demand_bandwidth=GBps(80)))
        engine.run(until=200.0)
        short = metrics.get("short").execution_time
        long_ = metrics.get("long").execution_time
        # the long task was contended only while the short one ran
        assert long_ < short / 5.0 * 20.0


class TestMemoryPressure:
    def test_oversubscribed_dram_swaps_and_slows(self, engine, metrics):
        agent = make_agent(engine, metrics, dram=MiB(2))
        spec = simple_task("big", footprint=MiB(4), base_time=10.0, lat_frac=0.6, bw_frac=0.1)
        agent.start_task(spec)
        engine.run(until=5000.0)
        tm = metrics.get("big")
        assert tm.execution_time > 12.0  # swap-resident pages hurt
        assert agent.memory.stats.swapped_out_bytes > 0

    def test_fault_in_records_major_faults(self, engine, metrics):
        agent = make_agent(engine, metrics, dram=MiB(2))
        agent.start_task(simple_task("a", footprint=MiB(2), n_phases=2, base_time=3.0))
        agent.start_task(simple_task("b", footprint=MiB(2), n_phases=2, base_time=3.0))
        engine.run(until=5000.0)
        majors = sum(metrics.get(n).major_faults for n in ("a", "b"))
        assert majors > 0

    def test_failure_when_even_swap_exhausted(self, engine, metrics):
        agent = make_agent(engine, metrics, dram=MiB(1), swap=MiB(1), pmem=0, cxl=0)
        te = agent.start_task(simple_task("huge", footprint=MiB(8)))
        engine.run(until=10.0)
        assert te.state is TaskState.FAILED
        tm = metrics.get("huge")
        assert tm.failed
        assert agent.memory.get_pageset("huge") is None
        assert agent.cores_free == 8


class TestDynamicAllocation:
    def test_phase_allocate_expands_footprint(self, engine, metrics):
        agent = make_agent(engine, metrics)
        phases = (
            TaskPhase("p0", base_time=2.0, compute_frac=0.5, lat_frac=0.3, bw_frac=0.2,
                      pattern=HotColdPattern()),
            TaskPhase("p1", base_time=2.0, compute_frac=0.5, lat_frac=0.3, bw_frac=0.2,
                      pattern=HotColdPattern(), allocate=DynamicRequest(MiB(1), MemFlag.CAP)),
        )
        spec = TaskSpec("dyn", WorkloadClass.GENERIC, MiB(1), MiB(1), phases)
        te = agent.start_task(spec)
        engine.run(until=3.0)
        assert te.pageset.mapped_bytes == MiB(2)
        engine.run(until=100.0)
        assert te.state is TaskState.DONE


class TestManagerIntegration:
    def test_imme_agent_runs_flagged_task(self, engine, metrics):
        specs = small_specs()
        node = NodeMemorySystem(specs, "n0")
        agent = NodeAgent(
            engine, node, TieredMemoryManager(specs), metrics,
            cores=8, chunk_size=CHUNK, validate_invariants=True,
        )
        te = agent.start_task(
            simple_task("lat-task", footprint=MiB(1), flags=MemFlag.LAT | MemFlag.SHL)
        )
        engine.run(until=100.0)
        assert te.state is TaskState.DONE
        # predictor learned the execution for future runs
        assert agent.policy.predictor.store.get("lat-task") is not None
