"""Figure 1 — motivation: tiered memory vs swap for containerized workflows.

Paper shape: every workflow collapses when constrained to DRAM+swap;
static tiered allocation recovers most of the loss; adding active
migration to CXL recovers more.
"""

from repro.experiments import run_fig01
from repro.experiments.common import CLASS_ORDER


def test_fig01_motivation(run_once):
    r = run_once(run_fig01)
    for cls in CLASS_ORDER:
        swap = r.value("swap-constrained", cls.name)
        static = r.value("tiered-alloc", cls.name)
        migrate = r.value("tiered+migration", cls.name)
        # tiered allocation beats pure swap for every workflow class
        assert static <= swap
        # the latency-sensitive and capacity classes gain the most from
        # active migration (paper: "bandwidth-intensive tasks benefit ...
        # performance further improved when pages are actively migrated")
        if cls.name in ("DM", "SC", "DL"):
            assert migrate < swap * 0.7
