"""Result-cache benchmark.

Cold-versus-warm wall clock for the same four-experiment sweep that
``bench_parallel_sweep`` runs live: the cold pass executes every cell and
writes the cache, the warm pass must serve everything from disk and skip
execution entirely.  A second micro-benchmark isolates the per-cell
read/write overhead so regressions in the codec or store show up even
when the sweep-level numbers stay comfortable.
"""

import time

from repro.cache import ResultCache, cell_keys
from repro.experiments.runner import run_all

#: same sweep as bench_parallel_sweep so the cold baseline is comparable
SWEEP = ["validation", "cold-pages", "fig01", "ext-utilization"]

#: warm runs replay from disk, so anything below this is a regression
MIN_WARM_SPEEDUP = 5.0


def _series(results):
    return {name: (r.xlabels, r.series) for name, r in results.items()}


def test_warm_cache_replays_sweep(benchmark, tmp_path):
    cache_dir = str(tmp_path / "cells")

    t0 = time.perf_counter()
    cold = run_all(SWEEP, verbose=False, cache_dir=cache_dir)
    t_cold = time.perf_counter() - t0

    warm = benchmark.pedantic(
        lambda: run_all(SWEEP, verbose=False, cache_dir=cache_dir),
        rounds=1,
        iterations=1,
    )
    t_warm = benchmark.stats.stats.mean

    assert _series(warm) == _series(cold)
    for name in SWEEP:
        assert warm[name].to_csv() == cold[name].to_csv()
    speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    print(
        f"\n{len(SWEEP)}-experiment sweep: cold {t_cold:.2f}s, "
        f"warm {t_warm:.3f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= MIN_WARM_SPEEDUP


def _replicate_cell(seed: int, n: int = 2048):
    import numpy as np

    rng = np.random.default_rng(seed)
    return {"series": rng.random(n), "mean": float(rng.random())}


def test_per_cell_read_write_overhead(benchmark, tmp_path):
    """Store round-trip cost for a representative array-bearing cell
    result — this is the per-cell tax a cold run pays over --no-cache."""
    cache = ResultCache(tmp_path / "micro")
    keys = [cell_keys(_replicate_cell, {"n": 2048}, seed=s) for s in range(64)]
    payload = _replicate_cell(0)

    t0 = time.perf_counter()
    for key in keys:
        cache.put(key, payload)
    write_us = (time.perf_counter() - t0) / len(keys) * 1e6

    def read_all():
        for key in keys:
            hit, _ = cache.get(key)
            assert hit

    benchmark.pedantic(read_all, rounds=3, iterations=1)
    read_us = benchmark.stats.stats.mean / len(keys) * 1e6
    print(
        f"\nper-cell overhead: write {write_us:.0f}us, read {read_us:.0f}us "
        f"({len(keys)} cells, 2048-point float64 series each)"
    )
    # both sides must stay far below the cost of the cheapest real cell
    # (hundreds of ms); single-digit milliseconds is already generous
    assert write_us < 10_000 and read_us < 10_000
