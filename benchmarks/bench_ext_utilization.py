"""Extension bench — the abstract's utilisation claim.

IMME must convert memory occupancy into the highest productive throughput
and keep the largest share of the footprint byte-addressable.
"""

from repro.experiments import run_utilization


def test_utilization_and_throughput(run_once):
    r = run_once(run_utilization)
    # IMME completes the most work per hour of any environment
    imme_tp = r.value("IMME", "jobs/hour")
    for env in ("IE", "CBE", "TME"):
        assert imme_tp >= r.value(env, "jobs/hour")
    # CBE is the occupancy-without-progress case
    assert r.value("CBE", "jobs/hour") < 0.5 * imme_tp
    assert r.value("CBE", "tiered util (%)") < r.value("IMME", "tiered util (%)")
    # IMME keeps most of the footprint byte-addressable
    assert r.value("IMME", "tiered util (%)") >= r.value("TME", "tiered util (%)")
