"""§IV-B methodology bench — run-to-run variance.

The paper runs each experiment ten times and reports "a negligible
variance, i.e., less than 5% between different executions of the same
experiment".  We run the Fig-5 colocated workload under IMME across five
seeds (different jitter, submission order, and policy noise streams) and
require the makespan's coefficient of variation to stay under 5%.
"""

import numpy as np

from repro.envs.environments import EnvKind
from repro.experiments.common import build_env, colocated_mix, run_and_collect
from repro.experiments.fig05_exec_time import DEFAULT_MIX

SEEDS = (0, 1, 2, 3, 4)


def run_seed(seed: int) -> float:
    specs = colocated_mix(dict(DEFAULT_MIX), seed=seed)
    env = build_env(EnvKind.IMME, specs, dram_fraction=0.25)
    metrics = run_and_collect(env, specs)
    return metrics.makespan()


def test_seed_variance_under_5_percent(benchmark):
    makespans = benchmark.pedantic(
        lambda: [run_seed(s) for s in SEEDS], rounds=1, iterations=1
    )
    arr = np.array(makespans)
    cv = arr.std() / arr.mean()
    print(f"\nmakespans: {[f'{m:.1f}' for m in makespans]}  CV={100 * cv:.2f}%")
    assert cv < 0.05, f"coefficient of variation {cv:.3f} exceeds the paper's 5% bound"


def test_identical_seed_is_deterministic(benchmark):
    a, b = benchmark.pedantic(
        lambda: (run_seed(0), run_seed(0)), rounds=1, iterations=1
    )
    assert a == b
