"""Extension bench — open-system DM stream under increasing offered load.

The constrained baseline's DM turnaround must grow steeply with the
arrival rate while IMME stays near-flat (latency-sensitive protection +
CXL absorption of the background footprint).
"""

from repro.experiments import run_open_system


def test_open_system_stream(run_once):
    r = run_once(run_open_system)
    cbe = r.series["CBE"]
    imme = r.series["IMME"]
    # IMME beats CBE at every offered rate
    assert all(i < c for i, c in zip(imme, cbe))
    # CBE degrades with load; IMME stays within 2x of its lightest point
    assert cbe[-1] > cbe[0]
    assert imme[-1] <= imme[0] * 2.0
    # the gap widens with load (the open-system separation)
    assert cbe[-1] / imme[-1] > cbe[0] / imme[0]
