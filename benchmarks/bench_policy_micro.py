"""Policy micro-benchmarks: the per-tick costs that bound simulator scale.

Large-cluster runs execute one `tick` per node per simulated second and a
rate recomputation per placement change; these measure both at realistic
pageset sizes (a 512 GiB node at 4 MiB chunks ≈ 128k DRAM chunks).
"""

import numpy as np

from repro.core.flags import MemFlag
from repro.core.manager import TieredMemoryManager
from repro.memory.pageset import PageSet
from repro.memory.system import NodeMemorySystem
from repro.memory.tiers import default_tier_specs
from repro.policies.base import AllocationRequest, PolicyContext
from repro.policies.linux import LinuxSwapPolicy
from repro.policies.tpp import TieredDemandPolicy
from repro.util.units import GiB, MiB


def big_node(policy_cls=None, n_tasks=8, task_bytes=GiB(32)):
    specs = default_tier_specs(dram_capacity=GiB(128))
    node = NodeMemorySystem(specs, "bench")
    ctx = PolicyContext(memory=node, rng=np.random.default_rng(0))
    rng = np.random.default_rng(1)
    policy = (
        TieredMemoryManager(specs)
        if policy_cls is None
        else policy_cls()
    )
    for i in range(n_tasks):
        ps = PageSet(f"t{i}", task_bytes, MiB(4))
        ps.region[:] = 0
        ps.region_flags[0] = MemFlag.NONE
        node.register(ps)
        policy.place(ctx, ps, AllocationRequest(f"t{i}", 0, task_bytes))
        ps.temperature = rng.random(ps.n_chunks).astype(np.float32)
        ps.access_weight = (rng.random(ps.n_chunks) ** 4).astype(np.float32)
    return node, ctx, policy


def test_victim_selection_cost(benchmark):
    """coldest_in/hottest_in top-k on a 128k-chunk pageset (a 512 GiB node
    at 4 MiB chunks) — the inner loop of every eviction decision."""
    rng = np.random.default_rng(0)
    n = 131072
    ps = PageSet("victims", n * MiB(4), MiB(4))
    ps.assign(np.arange(n), 0)
    ps.temperature = rng.random(n).astype(np.float32)
    k = 512

    def select():
        return ps.coldest_in(0, k), ps.hottest_in(0, k)

    cold, hot = benchmark(select)
    assert cold.size == k and hot.size == k


def test_manager_tick_cost(benchmark):
    """One IMME daemon tick over 8 x 32 GiB tasks (256 GiB of metadata)."""
    node, ctx, policy = big_node()
    benchmark(lambda: policy.tick(ctx))
    node.validate()


def test_linux_kswapd_tick_cost(benchmark):
    node, ctx, policy = big_node(
        policy_cls=lambda: LinuxSwapPolicy(high_watermark=0.5, low_watermark=0.45)
    )
    benchmark(lambda: policy.tick(ctx))
    node.validate()


def test_tpp_tick_cost(benchmark):
    node, ctx, policy = big_node(policy_cls=lambda: TieredDemandPolicy())
    benchmark(lambda: policy.tick(ctx))
    node.validate()


def test_rate_recompute_cost(benchmark):
    """The contention-matrix + slowdown path for 64 colocated tasks."""
    from repro.memory.contention import allocate_bandwidth
    from repro.runtime.rates import phase_slowdown, tier_demand
    from repro.workflows.patterns import UniformPattern
    from repro.workflows.task import TaskPhase
    from repro.util.units import GBps

    specs = default_tier_specs(dram_capacity=GiB(512))
    node = NodeMemorySystem(specs, "bench")
    rng = np.random.default_rng(0)
    phase = TaskPhase(
        "p", base_time=10.0, compute_frac=0.4, lat_frac=0.4, bw_frac=0.2,
        demand_bandwidth=GBps(5.0), pattern=UniformPattern(),
    )
    pagesets = []
    for i in range(64):
        ps = PageSet(f"t{i}", GiB(8), MiB(4))
        node.register(ps)
        node.place(ps, np.arange(ps.n_chunks), 0)
        ps.access_weight = (rng.random(ps.n_chunks) ** 4).astype(np.float32)
        pagesets.append(ps)
    caps = np.array([specs[t].bandwidth for t in sorted(specs, key=int)])

    def recompute():
        demands = np.stack([tier_demand(ps, phase.demand_bandwidth) for ps in pagesets])
        achieved = allocate_bandwidth(caps, demands)
        per_task = achieved.sum(axis=1)
        return [
            phase_slowdown(phase, ps, specs, float(bw))
            for ps, bw in zip(pagesets, per_task)
        ]

    slowdowns = benchmark(recompute)
    assert len(slowdowns) == 64
