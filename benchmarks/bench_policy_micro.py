"""Policy micro-benchmarks: the per-tick costs that bound simulator scale.

Large-cluster runs execute one `tick` per node per simulated second and a
rate recomputation per placement change; these measure both at realistic
pageset sizes (a 512 GiB node at 4 MiB chunks ≈ 128k DRAM chunks).

The tick benchmarks are parametrized over both simulation-core backends
(see ``conftest.backend``); each records cells/sec in ``extra_info`` so
the ``[arena]`` / ``[object]`` ratio is directly the arena speedup that
the CI bench gate tracks.
"""

import numpy as np

from repro.core.flags import MemFlag
from repro.core.heatmap import PageHeatmap
from repro.core.manager import TieredMemoryManager
from repro.memory.pageset import PageSet
from repro.memory.system import NodeMemorySystem
from repro.memory.tiers import default_tier_specs
from repro.policies.base import AllocationRequest, PolicyContext
from repro.policies.linux import LinuxSwapPolicy
from repro.policies.tpp import TieredDemandPolicy
from repro.util.units import GiB, MiB


def big_node(policy_cls=None, n_tasks=8, task_bytes=GiB(32), backend=None):
    specs = default_tier_specs(dram_capacity=GiB(128))
    node = NodeMemorySystem(specs, "bench", backend=backend)
    ctx = PolicyContext(memory=node, rng=np.random.default_rng(0))
    rng = np.random.default_rng(1)
    policy = (
        TieredMemoryManager(specs)
        if policy_cls is None
        else policy_cls()
    )
    for i in range(n_tasks):
        ps = PageSet(f"t{i}", task_bytes, MiB(4))
        ps.region[:] = 0
        ps.region_flags[0] = MemFlag.NONE
        node.register(ps)
        policy.place(ctx, ps, AllocationRequest(f"t{i}", 0, task_bytes))
        ps.temperature = rng.random(ps.n_chunks).astype(np.float32)
        ps.access_weight = (rng.random(ps.n_chunks) ** 4).astype(np.float32)
    return node, ctx, policy


def total_cells(node):
    """Page chunks of resident simulation state one tick walks."""
    return sum(ps.n_chunks for ps in node.pagesets())


def test_victim_selection_cost(benchmark):
    """coldest_in/hottest_in top-k on a 128k-chunk pageset (a 512 GiB node
    at 4 MiB chunks) — the inner loop of every eviction decision."""
    rng = np.random.default_rng(0)
    n = 131072
    ps = PageSet("victims", n * MiB(4), MiB(4))
    ps.assign(np.arange(n), 0)
    ps.temperature = rng.random(n).astype(np.float32)
    k = 512

    def select():
        return ps.coldest_in(0, k), ps.hottest_in(0, k)

    cold, hot = benchmark(select)
    assert cold.size == k and hot.size == k


def test_manager_tick_cost(benchmark, backend, record_throughput):
    """One IMME daemon tick over 8 x 32 GiB tasks (256 GiB of metadata)."""
    node, ctx, policy = big_node(backend=backend)
    benchmark(lambda: policy.tick(ctx))
    node.validate()
    record_throughput(total_cells(node), MiB(4))


def test_linux_kswapd_tick_cost(benchmark, backend, record_throughput):
    node, ctx, policy = big_node(
        policy_cls=lambda: LinuxSwapPolicy(high_watermark=0.5, low_watermark=0.45),
        backend=backend,
    )
    benchmark(lambda: policy.tick(ctx))
    node.validate()
    record_throughput(total_cells(node), MiB(4))


def test_tpp_tick_cost(benchmark, backend, record_throughput):
    node, ctx, policy = big_node(policy_cls=lambda: TieredDemandPolicy(), backend=backend)
    benchmark(lambda: policy.tick(ctx))
    node.validate()
    record_throughput(total_cells(node), MiB(4))


def test_heatmap_advance_cost(benchmark, backend, record_throughput):
    """The whole-node heatmap pass — fused temperature decay + access gain
    over every resident chunk — at a dense colocation of 128 x 2 GiB
    tasks (256 GiB of metadata, 64k cells).  This is the per-cell hot
    loop of every cluster run and the headline arena win: the object
    backend pays ~3 numpy dispatches *per task* per tick, the arena one
    fused sweep per *node*, so the [arena]/[object] cells/sec ratio
    grows with density (~5x at 64 tasks/node, ~10x at 128, ~17x at 256
    measured best-of on an idle machine)."""
    node, ctx, policy = big_node(n_tasks=128, task_bytes=GiB(2), backend=backend)
    heatmap = PageHeatmap()
    rates = {ps.owner: 1.0 for ps in node.pagesets()}

    benchmark(lambda: heatmap.advance_node(node, 1.0, rates))
    node.validate()
    record_throughput(total_cells(node), MiB(4))


def test_daemon_pass_cost(benchmark, backend, record_throughput):
    """The full per-node daemon pass — heatmap advance + IMME tick — over
    32 resident tasks (a dense colocation; same 256 GiB of metadata as
    the tick benches).  The recorded ratio (~3x) mixes migration-heavy
    early rounds with the steady state, where the arena settles at
    ~1.6x: the advance kernel's win is diluted by the movement daemon's
    per-task control flow, which object and arena execute identically
    to keep decisions bit-identical.  The arena-fast leg batches that
    daemon loop too — bench_movement_daemon.py isolates the steady
    state where that pays off (see docs/performance.md)."""
    node, ctx, policy = big_node(n_tasks=32, task_bytes=GiB(8), backend=backend)
    heatmap = PageHeatmap()
    rates = {ps.owner: 1.0 for ps in node.pagesets()}

    def daemon_pass():
        heatmap.advance_node(node, 1.0, rates)
        policy.tick(ctx)

    benchmark(daemon_pass)
    node.validate()
    record_throughput(total_cells(node), MiB(4))


def test_rate_recompute_cost(benchmark):
    """The contention-matrix + slowdown path for 64 colocated tasks."""
    from repro.memory.contention import allocate_bandwidth
    from repro.runtime.rates import phase_slowdown, tier_demand
    from repro.workflows.patterns import UniformPattern
    from repro.workflows.task import TaskPhase
    from repro.util.units import GBps

    specs = default_tier_specs(dram_capacity=GiB(512))
    node = NodeMemorySystem(specs, "bench")
    rng = np.random.default_rng(0)
    phase = TaskPhase(
        "p", base_time=10.0, compute_frac=0.4, lat_frac=0.4, bw_frac=0.2,
        demand_bandwidth=GBps(5.0), pattern=UniformPattern(),
    )
    pagesets = []
    for i in range(64):
        ps = PageSet(f"t{i}", GiB(8), MiB(4))
        node.register(ps)
        node.place(ps, np.arange(ps.n_chunks), 0)
        ps.access_weight = (rng.random(ps.n_chunks) ** 4).astype(np.float32)
        pagesets.append(ps)
    caps = np.array([specs[t].bandwidth for t in sorted(specs, key=int)])

    def recompute():
        demands = np.stack([tier_demand(ps, phase.demand_bandwidth) for ps in pagesets])
        achieved = allocate_bandwidth(caps, demands)
        per_task = achieved.sum(axis=1)
        return [
            phase_slowdown(phase, ps, specs, float(bw))
            for ps, bw in zip(pagesets, per_task)
        ]

    slowdowns = benchmark(recompute)
    assert len(slowdowns) == 64
