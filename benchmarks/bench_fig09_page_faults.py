"""Figure 9 — page-fault statistics under the movement policies.

Paper shape: the intelligent movement policy converts major faults into
minor faults (pages stay byte-addressable on CXL or shadowed in the page
cache) and improves performance ~46% over default swapping; swap traffic
disappears while CXL migration traffic appears.
"""

from repro.experiments import run_fig09


def test_fig09_page_faults(run_once):
    r = run_once(run_fig09)
    cbe_majors = sum(r.series["CBE:major"])
    cbe_minors = sum(r.series["CBE:minor"])
    imme_majors = sum(r.series["IMME:major"])
    imme_minors = sum(r.series["IMME:minor"])
    tme_majors = sum(r.series["TME:major"])
    # default swapping is all major faults
    assert cbe_majors > 0
    assert cbe_minors == 0
    # tiered environments eliminate nearly all majors...
    assert imme_majors < 0.05 * cbe_majors
    assert tme_majors < 0.05 * cbe_majors
    # ...and replace them with minors (remaps/promotions)
    assert imme_minors > 0
