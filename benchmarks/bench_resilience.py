"""Supervision overhead: resilience must be free when nobody asks for it.

Three measurements, mirroring ``bench_obs.py``:

* the raw cost of disabled invariant checks through the module
  dispatcher (one function call + one no-op method call each),
* the budget proof for ``--check-invariants``: count every check an
  enabled reference run makes, multiply by the measured null-dispatch
  cost, and assert the product stays under 2 % of the run's disabled
  wall time,
* the supervision tax: per-cell overhead of the supervised in-process
  loop over a plain ``[fn(x) for x]`` — asserted under 2 % of one real
  scenario cell's runtime (the granularity sweeps dispatch at).

Plus the journal's fsync cost, measured so regressions in the durable
append path are visible in the trajectory artifact.
"""

import time

from repro.resilience import RetryPolicy, RunJournal, supervised_map
from repro.resilience import invariants
from repro.resilience.invariants import InvariantChecker
from repro.scenarios.build import run_scenario
from repro.scenarios.registry import REGISTRY, _ensure_catalog

#: conservation + memory check pairs per timed round
N_DISPATCH = 20_000

#: cells for the supervision-tax measurement
N_CELLS = 2_000

#: journal records per timed round (each is a write + flush + fsync)
N_RECORDS = 200

#: the run-level overhead ceiling the disabled paths must stay under
OVERHEAD_BUDGET = 0.02


def _null_checks(n=N_DISPATCH):
    active = invariants.active
    for _ in range(n):
        checker = active()
        if checker.enabled:
            checker.conservation("bench", 0, 0, op="bench")
        checker = active()
        if checker.enabled:
            checker.memory(None)


def test_null_invariant_dispatch_cost(benchmark):
    """20k disabled check sites (the hot-path tax when checking is off)."""
    assert not invariants.enabled()
    benchmark(_null_checks)


class _CountingChecker(InvariantChecker):
    """Counts checks without doing them: isolates dispatch frequency."""

    def __init__(self):
        super().__init__(strict=True)

    def memory(self, mem):
        self.checks += 1

    def conservation(self, where, before, after, *, op, delta=0):
        self.checks += 1

    def engine(self, engine):
        self.checks += 1

    def scheduler(self, sched):
        self.checks += 1

    def metrics(self, metrics):
        self.checks += 1


def test_disabled_invariant_budget(benchmark):
    """check sites x null-dispatch cost must be < 2 % of the disabled run."""
    _ensure_catalog()
    spec = REGISTRY.scenario("ext-resilience/IMME")  # fault-heavy: most sites

    with invariants.session(_CountingChecker()) as counting:
        run_scenario(spec)
    sites = counting.checks
    assert sites > 10, "reference run hit almost no check sites"

    t0 = time.perf_counter()
    _null_checks()
    per_call = (time.perf_counter() - t0) / (2 * N_DISPATCH)

    assert not invariants.enabled()
    benchmark.pedantic(lambda: run_scenario(spec), rounds=3, iterations=1)
    disabled_s = benchmark.stats.stats.median

    overhead = sites * per_call
    ratio = overhead / disabled_s
    print(
        f"\n{sites} check sites x {per_call * 1e9:.0f} ns null dispatch = "
        f"{overhead * 1e3:.3f} ms over a {disabled_s * 1e3:.0f} ms run "
        f"({ratio:.4%} of wall time, budget {OVERHEAD_BUDGET:.0%})"
    )
    assert ratio < OVERHEAD_BUDGET


def _busy_cell(x):
    total = 0
    for i in range(50):
        total += i * x
    return total


def test_supervision_tax_per_cell(benchmark):
    """Per-cell cost of the supervised loop over a plain comprehension,
    bounded against one real scenario cell's runtime."""
    items = list(range(N_CELLS))

    t0 = time.perf_counter()
    plain = [_busy_cell(x) for x in items]
    plain_s = time.perf_counter() - t0

    retry = RetryPolicy(max_attempts=1)
    sup = benchmark.pedantic(
        lambda: supervised_map(_busy_cell, items, jobs=None, retry=retry),
        rounds=3, iterations=1,
    )
    assert sup.ok and sup.results == plain
    per_cell = max(0.0, benchmark.stats.stats.median - plain_s) / N_CELLS

    _ensure_catalog()
    t0 = time.perf_counter()
    run_scenario(REGISTRY.scenario("cold-pages"))
    cell_s = time.perf_counter() - t0

    ratio = per_cell / cell_s
    print(
        f"\nsupervision tax {per_cell * 1e6:.2f} us/cell against a "
        f"{cell_s * 1e3:.0f} ms reference cell "
        f"({ratio:.4%} of cell time, budget {OVERHEAD_BUDGET:.0%})"
    )
    assert ratio < OVERHEAD_BUDGET


def test_journal_append_cost(benchmark, tmp_path):
    """200 durable appends (write + flush + fsync each) per round."""

    def append(journal):
        for i in range(N_RECORDS):
            journal.cell_committed(f"cell{i}")

    def setup():
        return (RunJournal(tmp_path / f"j{time.monotonic_ns()}.jsonl"),), {}

    benchmark.pedantic(append, setup=setup, rounds=3, iterations=1)
