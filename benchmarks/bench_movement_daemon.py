"""Movement-daemon steady-state benchmark: the arena-fast headline.

``bench_policy_micro.test_daemon_pass_cost`` measures the daemon from a
cold start, which mixes migration-heavy early rounds into the number.
This bench isolates the *steady state* — the regime a long cluster run
spends almost all of its wall-clock in — by warming the node until the
movement daemon's per-tick work settles, then timing whole passes
(heatmap advance + IMME tick).

Legs: ``[object]`` / ``[arena]`` / ``[arena-fast]`` at 64 / 128 / 256
tasks per node (256 GiB of resident metadata in every case, so the
cells/sec numbers are density comparisons, not size comparisons).  Each
leg records ``passes_per_sec`` in ``extra_info``; the CI regression
gate tracks the arena legs against BENCH_simulator.json.  The
``[arena-fast]/[object]`` ratio at 128 tasks is the tentpole target
(>=3x steady state); ``test_daemon_steady_state_speedup`` pins a
conservative floor so the ratio cannot silently rot between baseline
regenerations.
"""

import time

import pytest

from repro.core.heatmap import PageHeatmap
from repro.util.units import GiB, MiB

from bench_policy_micro import big_node, total_cells

#: passes to run before timing — enough for the initial placement churn
#: (promotions draining swap/PMem, proactive spill) to die down
WARMUP_PASSES = 12

#: (n_tasks, per-task bytes): constant 256 GiB node-resident total
DENSITIES = {64: GiB(4), 128: GiB(2), 256: GiB(1)}


def make_steady_node(backend, n_tasks):
    node, ctx, policy = big_node(
        n_tasks=n_tasks, task_bytes=DENSITIES[n_tasks], backend=backend
    )
    heatmap = PageHeatmap()
    rates = {ps.owner: 1.0 for ps in node.pagesets()}

    def daemon_pass():
        heatmap.advance_node(node, 1.0, rates)
        policy.tick(ctx)

    for _ in range(WARMUP_PASSES):
        daemon_pass()
    return node, daemon_pass


@pytest.mark.parametrize("n_tasks", sorted(DENSITIES))
def test_daemon_pass_steady_state(benchmark, backend, record_throughput, n_tasks):
    """One whole steady-state daemon pass per node (advance + tick)."""
    node, daemon_pass = make_steady_node(backend, n_tasks)
    benchmark(daemon_pass)
    node.validate()
    record_throughput(total_cells(node), MiB(4))
    benchmark.extra_info["n_tasks"] = n_tasks
    benchmark.extra_info["passes_per_sec"] = round(
        1.0 / benchmark.stats.stats.median, 2
    )


def test_daemon_steady_state_speedup(backend):
    """The batched kernels must hold >=2x steady state over the object
    core at 128 tasks/node (measured ~3.5-4x on an idle machine; the
    floor leaves headroom for noisy shared runners).  Only the
    [arena-fast] leg asserts — the other legs exist so a pinned
    ``--backend`` run never fails collection."""
    if backend != "arena-fast":
        pytest.skip("ratio is defined for the arena-fast leg")

    def best_pass_time(b):
        _, daemon_pass = make_steady_node(b, 128)
        best = float("inf")
        for _ in range(8):
            t0 = time.perf_counter()
            daemon_pass()
            best = min(best, time.perf_counter() - t0)
        return best

    slow = best_pass_time("object")
    fast = best_pass_time("arena-fast")
    assert slow / fast >= 2.0, f"arena-fast daemon pass only {slow / fast:.2f}x object"
