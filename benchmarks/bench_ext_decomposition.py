"""Extension bench — workflow deconstruction (§I).

Deconstructed big jobs must strand less memory and leave the colocated
latency-sensitive stream visibly faster.
"""

from repro.experiments import run_decomposition


def test_decomposition_unstrands_memory(run_once):
    r = run_once(run_decomposition)
    assert (
        r.value("deconstructed", "peak big-job bytes (MiB)")
        < 0.7 * r.value("monolithic", "peak big-job bytes (MiB)")
    )
    assert (
        r.value("deconstructed", "mean DM exec (s)")
        <= r.value("monolithic", "mean DM exec (s)")
    )
    assert (
        r.value("deconstructed", "makespan (s)")
        <= r.value("monolithic", "makespan (s)") * 1.10
    )
