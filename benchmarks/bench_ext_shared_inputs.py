"""Extension bench — shared read-only inputs on CXL (§III-C5 strategy 1).

IMME must stage the common dataset exactly once and save both resident
memory and execution time versus per-instance private copies.
"""

from repro.experiments import run_shared_inputs


def test_shared_inputs(run_once):
    r = run_once(run_shared_inputs)
    # one staged copy vs one private copy per instance
    assert r.value("IMME", "staged copies") == 1.0
    assert r.value("TME", "staged copies") > 1.0
    # large residency saving
    assert (
        r.value("IMME", "resident bytes (MiB)")
        < 0.6 * r.value("TME", "resident bytes (MiB)")
    )
    # and at least no slower
    assert r.value("IMME", "exec time (s)") <= r.value("TME", "exec time (s)") * 1.02
