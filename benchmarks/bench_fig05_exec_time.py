"""Figure 5 — total execution time across IE/CBE/TME/IMME.

Paper headline: IMME reduces execution time by up to 7% / 87% / 25%
versus IE / CBE / TME.  We assert the ordering and the rough factors.
"""

from repro.experiments import run_fig05
from repro.experiments.common import CLASS_ORDER
from repro.metrics.report import improvement


def test_fig05_exec_time(run_once):
    r = run_once(run_fig05)
    gains = {
        base: max(
            improvement(r.value(base, c.name), r.value("IMME", c.name))
            for c in CLASS_ORDER
        )
        for base in ("IE", "CBE", "TME")
    }
    # vs CBE: the disaster case — IMME wins by a wide margin (paper 87%)
    assert gains["CBE"] > 0.60
    # vs TME: class-aware placement wins visibly (paper 25%)
    assert gains["TME"] > 0.08
    # vs IE: multi-path bandwidth striping lets IMME at least match the
    # ideal environment for some workflow (paper: up to 7% better)
    assert gains["IE"] > -0.02
    # the latency-sensitive class is fully protected by IMME
    assert r.value("IMME", "DM") <= r.value("CBE", "DM") * 0.35
