"""Telemetry overhead: the instrumented stack must be free when nobody
records.

Three measurements:

* the raw cost of disabled emissions through the module dispatchers
  (one function call + one no-op method call each),
* the cost of the same emissions into a live ``Telemetry`` context,
* the budget proof: count every emission an instrumented reference run
  makes, multiply by the measured per-call null-dispatch cost, and
  assert the product stays under 2 % of the run's disabled wall time.
"""

import time

from repro import obs
from repro.scenarios.build import run_scenario
from repro.scenarios.registry import REGISTRY, _ensure_catalog

#: emission pairs (counter + span) per timed round
N_DISPATCH = 20_000

#: the run-level overhead ceiling the disabled path must stay under
OVERHEAD_BUDGET = 0.02


def _null_emissions(n=N_DISPATCH):
    counter = obs.counter
    span = obs.span
    for i in range(n):
        counter("bench.counter", 1, tier="dram")
        with span("bench.span"):
            pass


def test_null_dispatch_cost(benchmark):
    """20k disabled counter+span emissions (the hot-path tax when off)."""
    assert not obs.enabled()
    benchmark(_null_emissions)


def test_enabled_emission_cost(benchmark):
    """The same 20k emissions into a live context (what --telemetry pays)."""

    def setup():
        return (obs.Telemetry("bench", max_spans=2 * N_DISPATCH),), {}

    def emit(tel):
        with obs.session(tel):
            _null_emissions()

    benchmark.pedantic(emit, setup=setup, rounds=3, iterations=1)


class _CountingTelemetry(obs.Telemetry):
    """Counts every dispatcher call an instrumented run makes."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = 0

    def counter(self, *a, **kw):
        self.calls += 1
        super().counter(*a, **kw)

    def gauge(self, *a, **kw):
        self.calls += 1
        super().gauge(*a, **kw)

    def observe(self, *a, **kw):
        self.calls += 1
        super().observe(*a, **kw)

    def event(self, *a, **kw):
        self.calls += 1
        super().event(*a, **kw)

    def span(self, *a, **kw):
        self.calls += 1
        return super().span(*a, **kw)


def test_disabled_overhead_budget(benchmark, backend):
    """emissions x null-dispatch cost must be < 2 % of the disabled run.

    The emission count comes from an *enabled* run of the same scenario
    (a superset of what the disabled run dispatches, since e.g. the env
    export only fires when enabled), so the bound is conservative.

    Parametrized over both simulation cores: the arena's kernel
    span/counter emissions (cells advanced per tick, kernel time per
    node) sit behind the same ``obs.enabled()`` guard and must fit the
    same budget — even against the arena's *smaller* disabled wall time.
    """
    _ensure_catalog()
    spec = REGISTRY.scenario("cold-pages")

    tel = _CountingTelemetry("bench-count")
    with obs.session(tel):
        run_scenario(spec)
    emissions = tel.calls
    assert emissions > 50, "reference run emitted almost nothing"

    t0 = time.perf_counter()
    _null_emissions()
    per_call = (time.perf_counter() - t0) / (2 * N_DISPATCH)

    assert not obs.enabled()
    benchmark.pedantic(lambda: run_scenario(spec), rounds=3, iterations=1)
    disabled_s = benchmark.stats.stats.median

    overhead = emissions * per_call
    ratio = overhead / disabled_s
    print(
        f"\n{emissions} emissions x {per_call * 1e9:.0f} ns null dispatch = "
        f"{overhead * 1e3:.3f} ms over a {disabled_s * 1e3:.0f} ms run "
        f"({ratio:.4%} of wall time, budget {OVERHEAD_BUDGET:.0%})"
    )
    assert ratio < OVERHEAD_BUDGET
