"""Telemetry overhead: the instrumented stack must be free when nobody
records.

Three measurements:

* the raw cost of disabled emissions through the module dispatchers
  (one function call + one no-op method call each),
* the cost of the same emissions into a live ``Telemetry`` context,
* the budget proof: count every emission an instrumented reference run
  makes, multiply by the measured per-call null-dispatch cost, and
  assert the product stays under 2 % of the run's disabled wall time.

The insight plane (migration ledger + tier sampler) repeats the same
discipline with its own legs: the disabled probe (one ``active()`` call
plus an ``enabled`` attribute read, the exact hot-path pattern the
movement kernels use), the enabled recording cost, and a two-sided
budget proof — disabled probes under 2 %, enabled recording under 5 %
of the reference run's disabled wall time.
"""

import time

import numpy as np

from repro import obs
from repro.obs import insight as _insight
from repro.scenarios.build import run_scenario
from repro.scenarios.registry import REGISTRY, _ensure_catalog

#: emission pairs (counter + span) per timed round
N_DISPATCH = 20_000

#: the run-level overhead ceiling the disabled path must stay under
OVERHEAD_BUDGET = 0.02

#: insight-plane ceilings: disabled probes / enabled recording
INSIGHT_DISABLED_BUDGET = 0.02
INSIGHT_ENABLED_BUDGET = 0.05


def _null_emissions(n=N_DISPATCH):
    counter = obs.counter
    span = obs.span
    for i in range(n):
        counter("bench.counter", 1, tier="dram")
        with span("bench.span"):
            pass


def test_null_dispatch_cost(benchmark):
    """20k disabled counter+span emissions (the hot-path tax when off)."""
    assert not obs.enabled()
    benchmark(_null_emissions)


def test_enabled_emission_cost(benchmark):
    """The same 20k emissions into a live context (what --telemetry pays)."""

    def setup():
        return (obs.Telemetry("bench", max_spans=2 * N_DISPATCH),), {}

    def emit(tel):
        with obs.session(tel):
            _null_emissions()

    benchmark.pedantic(emit, setup=setup, rounds=3, iterations=1)


class _CountingTelemetry(obs.Telemetry):
    """Counts every dispatcher call an instrumented run makes."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = 0

    def counter(self, *a, **kw):
        self.calls += 1
        super().counter(*a, **kw)

    def gauge(self, *a, **kw):
        self.calls += 1
        super().gauge(*a, **kw)

    def observe(self, *a, **kw):
        self.calls += 1
        super().observe(*a, **kw)

    def event(self, *a, **kw):
        self.calls += 1
        super().event(*a, **kw)

    def span(self, *a, **kw):
        self.calls += 1
        return super().span(*a, **kw)


def test_disabled_overhead_budget(benchmark, backend):
    """emissions x null-dispatch cost must be < 2 % of the disabled run.

    The emission count comes from an *enabled* run of the same scenario
    (a superset of what the disabled run dispatches, since e.g. the env
    export only fires when enabled), so the bound is conservative.

    Parametrized over both simulation cores: the arena's kernel
    span/counter emissions (cells advanced per tick, kernel time per
    node) sit behind the same ``obs.enabled()`` guard and must fit the
    same budget — even against the arena's *smaller* disabled wall time.
    """
    _ensure_catalog()
    spec = REGISTRY.scenario("cold-pages")

    tel = _CountingTelemetry("bench-count")
    with obs.session(tel):
        run_scenario(spec)
    emissions = tel.calls
    assert emissions > 50, "reference run emitted almost nothing"

    t0 = time.perf_counter()
    _null_emissions()
    per_call = (time.perf_counter() - t0) / (2 * N_DISPATCH)

    assert not obs.enabled()
    benchmark.pedantic(lambda: run_scenario(spec), rounds=3, iterations=1)
    disabled_s = benchmark.stats.stats.median

    overhead = emissions * per_call
    ratio = overhead / disabled_s
    print(
        f"\n{emissions} emissions x {per_call * 1e9:.0f} ns null dispatch = "
        f"{overhead * 1e3:.3f} ms over a {disabled_s * 1e3:.0f} ms run "
        f"({ratio:.4%} of wall time, budget {OVERHEAD_BUDGET:.0%})"
    )
    assert ratio < OVERHEAD_BUDGET


# --------------------------------------------------------------------------- #
# insight plane: ledger + sampler legs
# --------------------------------------------------------------------------- #

def _null_insight_probes(n=N_DISPATCH):
    """The disabled hot-path pattern at every placement emission point:
    fetch the active context, read its ``enabled`` flag, do nothing."""
    active = _insight.active
    for _ in range(n):
        ins = active()
        if ins.enabled:  # pragma: no cover - the disabled leg never enters
            ins.migration(0.0, "n0", "t", 2, 0, 1, 4096)


def test_insight_null_probe_cost(benchmark):
    """20k disabled ledger probes (the movement kernels' tax when off)."""
    assert not _insight.enabled()
    benchmark(_null_insight_probes)


def test_insight_enabled_recording_cost(benchmark):
    """20k ledger records + 2k tier samples into a live context (what a
    run with the plane active pays per emission)."""
    occ = np.array([100, 50, 25, 0], dtype=np.int64)
    free = np.array([900, 950, 975, 1000], dtype=np.int64)
    temp_q = [0.1, 0.5, 0.9]

    def setup():
        return (_insight.Insight("bench", max_ledger_entries=2 * N_DISPATCH),), {}

    def emit(ins):
        with _insight.session(ins), ins.cause("reactive"):
            for i in range(N_DISPATCH):
                ins.migration(float(i), "n0", "t", 2, 0, 1, 4096)
                if i % 10 == 0:
                    ins.sample(float(i), "n0", occ, free, 0.1, temp_q)

    benchmark.pedantic(emit, setup=setup, rounds=3, iterations=1)


class _CountingInsight(_insight.Insight):
    """Counts every recording call an instrumented run makes."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = 0

    def migration(self, *a, **kw):
        self.calls += 1
        super().migration(*a, **kw)

    def ledger_event(self, *a, **kw):
        self.calls += 1
        super().ledger_event(*a, **kw)

    def sample(self, *a, **kw):
        self.calls += 1
        super().sample(*a, **kw)


def test_insight_overhead_budget(benchmark, backend):
    """Two-sided proof against a movement-heavy reference scenario.

    Disabled: emissions x the measured null-probe cost must stay under
    2 % of the disabled run's wall time (same shape as the telemetry
    budget, same conservative over-count — the enabled run's emission
    tally bounds the disabled run's probe count).

    Enabled: emissions x the measured per-record live cost must stay
    under 5 % — recording into the bounded ledger/rings is cheap enough
    that turning the plane on does not distort what it observes.
    """
    _ensure_catalog()
    spec = REGISTRY.scenario("ext-resilience/IMME")

    ins = _CountingInsight("bench-count")
    with _insight.session(ins):
        run_scenario(spec)
    emissions = ins.calls
    assert emissions > 50, "reference run recorded almost nothing"

    t0 = time.perf_counter()
    _null_insight_probes()
    per_probe = (time.perf_counter() - t0) / N_DISPATCH

    live = _insight.Insight("bench-live", max_ledger_entries=2 * N_DISPATCH)
    with _insight.session(live), live.cause("reactive"):
        t0 = time.perf_counter()
        for i in range(N_DISPATCH):
            live.migration(float(i), "n0", "t", 2, 0, 1, 4096)
        per_record = (time.perf_counter() - t0) / N_DISPATCH

    assert not _insight.enabled()
    benchmark.pedantic(lambda: run_scenario(spec), rounds=3, iterations=1)
    disabled_s = benchmark.stats.stats.median

    for label, per_call, budget in (
        ("disabled", per_probe, INSIGHT_DISABLED_BUDGET),
        ("enabled", per_record, INSIGHT_ENABLED_BUDGET),
    ):
        overhead = emissions * per_call
        ratio = overhead / disabled_s
        print(
            f"\n[{label}] {emissions} emissions x {per_call * 1e9:.0f} ns = "
            f"{overhead * 1e3:.3f} ms over a {disabled_s * 1e3:.0f} ms run "
            f"({ratio:.4%}, budget {budget:.0%})"
        )
        assert ratio < budget
