"""Extension bench — workflow-failure avoidance (design objective 1).

Fixed container allocations + mid-run expansion requests: without the
manager's CAP→CXL path the OOM killer terminates every instance; under
IMME every workflow completes (§IV-D1's "would otherwise crash").
"""

from repro.experiments import run_failures


def test_failure_avoidance(run_once):
    r = run_once(run_failures)
    # the constrained baseline loses every workflow to the OOM killer
    assert r.value("CBE", "completed") == 0.0
    assert r.value("CBE", "oom-killed") > 0.0
    # IMME completes the whole ensemble
    assert r.value("IMME", "oom-killed") == 0.0
    assert r.value("IMME", "completed") == r.value("CBE", "oom-killed")
