"""Simulator-validation bench: the end-to-end stack must reproduce the
closed-form rate model exactly for uncontended single-tier tasks."""

from repro.experiments import run_validation


def test_model_validation(run_once):
    r = run_once(run_validation)
    for tier, values in r.series.items():
        for label, ratio in zip(r.xlabels, values):
            assert abs(ratio - 1.0) < 0.02, (
                f"{tier}/{label}: simulated/predicted = {ratio:.4f}"
            )
