"""Figure 10 — cluster-size scaling with the paper's 2000-instance mix
(scaled), including the shared-CXL image-staging startup win.

Paper shape: makespan falls (or stays flat) as nodes are added; CBE is
worst everywhere; IMME wins overall, with container startup collapsing
because images are read from shared CXL instead of pulled over the
network (up to 51%/76%/32% vs IE/CBE/TME).
"""

from repro.experiments import run_fig10
from repro.metrics.report import improvement


def test_fig10_scalability(run_once):
    r = run_once(run_fig10)
    # adding nodes never makes a constrained environment slower
    for env in ("CBE", "TME", "IMME"):
        assert r.series[env][-1] <= r.series[env][0] * 1.05
    # CBE is the worst environment at every cluster size
    for i in range(len(r.xlabels)):
        assert r.series["CBE"][i] >= r.series["IMME"][i]
    # IMME beats every baseline at the largest cluster
    for base in ("IE", "CBE", "TME"):
        assert improvement(r.series[base][-1], r.series["IMME"][-1]) >= 0.0
    # the startup note shows the CXL-staging effect
    assert any("startup" in n for n in r.notes)
