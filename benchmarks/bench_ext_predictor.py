"""Extension bench — the execution-log predictor (§III-C1).

Repeated unflagged runs of the same workflow must get faster after the
first execution (the manager learned the heat profile) and then stay
stable.
"""

from repro.experiments import run_predictor_learning


def test_predictor_learning_curve(run_once):
    r = run_once(run_predictor_learning)
    series = r.series["IMME(no flags)"]
    # the cold-start run is the slowest
    assert series[0] > min(series[1:])
    # learning converges: later runs are stable within 5%
    tail = series[1:]
    assert max(tail) <= min(tail) * 1.05
    # the learned placement is meaningfully better than cold start
    assert series[-1] <= series[0] * 0.95
