"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation disables one IMME mechanism and re-runs the Fig-5 workload,
verifying the mechanism actually carries its weight:

* **proactive swapping** (§III-C4) — without it, reactive replacement does
  all the work and latency-sensitive tasks see more disturbance;
* **page pinning** (Fig. 4) — without pinning, LAT/SHL pages become
  eviction candidates;
* **shared-CXL image staging** (§III-C5) — without it, startup pays the
  network pull storm.
"""

import pytest

from repro.core.manager import TieredMemoryManager
from repro.core.movement import MovementConfig
from repro.envs.environments import EnvKind
from repro.experiments.common import build_env, colocated_mix, run_and_collect
from repro.experiments.fig05_exec_time import DEFAULT_MIX


@pytest.fixture(scope="module")
def workload():
    return colocated_mix(dict(DEFAULT_MIX))


def run_imme(specs, policy_factory=None):
    env = build_env(
        EnvKind.IMME, specs, dram_fraction=0.25, policy_factory=policy_factory
    )
    return run_and_collect(env, specs), env


def test_ablation_no_proactive_swap(benchmark, workload):
    """Disabling proactive swapping must not *help* (and typically hurts
    the latency-sensitive class via reactive-eviction disturbance)."""

    def run():
        no_proactive = MovementConfig(proactive_threshold=1.0, proactive_target=1.0)
        base, _ = run_imme(workload)
        ablated, env = run_imme(
            workload,
            policy_factory=lambda s: TieredMemoryManager(s, movement_config=no_proactive),
        )
        return base, ablated, env

    base, ablated, env = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nproactive-swap ablation: DM {base.mean_execution_time('DM'):.2f}s -> "
        f"{ablated.mean_execution_time('DM'):.2f}s without proactive swapping"
    )
    assert ablated.mean_execution_time("DM") >= base.mean_execution_time("DM") * 0.99
    # without the proactive path nothing populates the page cache
    assert env.node_traffic()["page_cache_inserts"] == 0


def test_ablation_no_pinning(benchmark, workload):
    """pin_fraction=0 removes the guaranteed LAT/SHL slice; the protected
    class must not get faster without it."""

    def run():
        base, _ = run_imme(workload)
        ablated, _ = run_imme(
            workload, policy_factory=lambda s: TieredMemoryManager(s, pin_fraction=0.0)
        )
        return base, ablated

    base, ablated = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\npinning ablation: DM {base.mean_execution_time('DM'):.2f}s -> "
        f"{ablated.mean_execution_time('DM'):.2f}s without pinning"
    )
    assert ablated.mean_execution_time("DM") >= base.mean_execution_time("DM") * 0.95


def test_ablation_no_image_staging(benchmark, workload):
    """Without shared-CXL staging, container startup pays network pulls."""

    def run():
        staged_env = build_env(EnvKind.IMME, workload, dram_fraction=0.25)
        staged = staged_env.run_batch(workload, max_time=1e7)
        unstaged_env = build_env(EnvKind.IMME, workload, dram_fraction=0.25)
        unstaged_env.config.stage_images = False
        unstaged = unstaged_env.run_batch(workload, max_time=1e7)
        staged_env.stop(); unstaged_env.stop()
        return staged, unstaged, staged_env, unstaged_env

    staged, unstaged, staged_env, unstaged_env = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        f"\nimage-staging ablation: startup {staged.mean_startup_time():.2f}s staged vs "
        f"{unstaged.mean_startup_time():.2f}s unstaged"
    )
    assert staged.mean_startup_time() < unstaged.mean_startup_time()
    assert staged_env.containers.network_pulls == 0
    assert unstaged_env.containers.network_pulls > 0
