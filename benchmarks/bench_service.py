"""Service-mode benchmark — open-loop arrival throughput.

How fast the simulator pushes a saturated steady-state stream through
the scheduler: 10,000 offered arrivals against a queue-cap admission
policy (the validated acceptance recipe — most arrivals are shed at one
policy check each, so the measured cost is the service loop itself plus
the admitted tasks' simulation).  ``arrivals_per_sec`` lands in
``extra_info`` and is tracked against BENCH_simulator.json by the same
>10% CI regression gate as the arena cells/sec numbers.
"""

from repro.envs.environments import EnvKind, make_environment
from repro.service import ServiceSpec, serve
from repro.util.units import GiB, MiB

SCALE = 1.0 / 2048.0


def test_service_stream_throughput(benchmark, backend):
    """The 10k-arrival saturated service run, per simulation-core backend."""

    spec = ServiceSpec(
        rate=50.0,
        max_arrivals=10_000,
        window=20.0,
        admission="queue-cap",
        queue_cap=32,
        classes=(("DM", 3), ("DC", 1)),
    )

    def run():
        env = make_environment(
            EnvKind.IMME, n_nodes=2, dram_capacity=GiB(2), chunk_size=MiB(16)
        )
        try:
            return serve(env, spec, scale=SCALE, seed=5)
        finally:
            env.stop()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.offered == 10_000
    assert report.admitted > 0 and report.completed == report.admitted
    assert report.converged
    median = benchmark.stats.stats.median
    if median > 0:
        benchmark.extra_info["offered"] = report.offered
        benchmark.extra_info["arrivals_per_sec"] = round(report.offered / median)
    print(
        f"\n{report.offered} arrivals ({backend} core): admitted "
        f"{report.admitted}, util {report.steady_utilization:.2f}, "
        f"{len(report.windows)} windows"
    )
