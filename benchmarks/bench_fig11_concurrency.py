"""Figure 11 — concurrent workflow invocations on a fixed cluster.

Paper shape: execution time grows with concurrency for every environment;
IMME grows the slowest (its multi-tier allocation and shared-image staging
absorb the pressure) with negligible (<~4%) runtime overhead versus TME.
"""

from repro.experiments import run_fig11


def test_fig11_concurrency(run_once):
    r = run_once(run_fig11)
    # makespan grows with concurrency in the constrained environments
    for env in ("CBE", "TME"):
        assert r.series[env][-1] >= r.series[env][0] * 0.95
    # IMME wins at the highest concurrency
    for base in ("IE", "CBE", "TME"):
        assert r.series["IMME"][-1] <= r.series[base][-1] * 1.01
    # IMME's scale-up growth does not exceed TME's by more than the
    # paper's ~4% overhead bound
    growth_tme = r.series["TME"][-1] / r.series["TME"][0]
    growth_imme = r.series["IMME"][-1] / r.series["IMME"][0]
    assert growth_imme <= growth_tme * 1.04
