"""Example-script smoke benches.

Every shipped example must run end-to-end; their wall-clock cost is
tracked so regressions in the simulator show up here first.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p.name for p in (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(benchmark, script, capsys):
    path = Path(__file__).parent.parent / "examples" / script

    def run():
        argv = sys.argv
        sys.argv = [str(path)]
        try:
            runpy.run_path(str(path), run_name="__main__")
        finally:
            sys.argv = argv

    benchmark.pedantic(run, rounds=1, iterations=1)
    out = capsys.readouterr().out
    assert len(out) > 100  # every example narrates its result
