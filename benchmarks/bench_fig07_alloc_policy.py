"""Figure 7 — page allocation policy comparison.

Paper: Algorithm 1 reduces execution time by 44% on average vs Default
Allocation and 8% vs Uniform (interleaved) Allocation; Uniform helps
bandwidth-intensive flows but is the worst case for latency-sensitive
ones.
"""

import numpy as np

from repro.experiments import run_fig07
from repro.experiments.common import CLASS_ORDER
from repro.metrics.report import improvement


def test_fig07_alloc_policy(run_once):
    r = run_once(run_fig07)
    ours = np.array(r.series["ours-alg1"])
    default = np.array(r.series["default-alloc"])
    uniform = np.array(r.series["uniform-interleave"])
    mean_gain_default = float(
        np.mean([improvement(d, o) for d, o in zip(default, ours)])
    )
    mean_gain_uniform = float(
        np.mean([improvement(u, o) for u, o in zip(uniform, ours)])
    )
    # ours beats both baselines on average (paper: 44% / 8%)
    assert mean_gain_default > 0.10
    assert mean_gain_uniform > 0.0
    # uniform interleave is the worst case for the latency-sensitive class
    dm = CLASS_ORDER.index(next(c for c in CLASS_ORDER if c.name == "DM"))
    assert uniform[dm] > ours[dm]
