"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's figures at laptop scale,
prints the same series the figure plots, and asserts the qualitative
shape (who wins, roughly by how much).  Runs are deterministic, so a
single round measures the harness cost without statistical noise.

Simulation-core benchmarks are parametrized over the backends (the
``backend`` fixture): the object core and the struct-of-arrays arena
core produce identical results, so those two legs of each benchmark
measure the same work and their cells/sec ratio is the arena speedup.
The ``arena-fast`` leg runs the relaxed batched movement kernels —
statistically equivalent work, not byte-identical, so its ratio over
``[object]`` is the headline batched-daemon speedup rather than a
same-trace comparison.  ``--backend object|arena|arena-fast`` pins one
leg (the others are skipped).
"""

import pytest

#: bytes per simulated OS page, for pages/sec reporting
PAGE_SIZE = 4096


def pytest_addoption(parser):
    parser.addoption(
        "--backend",
        action="store",
        default=None,
        choices=("object", "arena", "arena-fast"),
        help="pin the simulation-core backend (default: run every leg)",
    )


@pytest.fixture(params=["object", "arena", "arena-fast"])
def backend(request, monkeypatch):
    """Parametrize a benchmark over the simulation-core backends.

    Sets ``$REPRO_CORE`` so every :class:`NodeMemorySystem` constructed
    inside the benchmark resolves the requested backend, and returns the
    backend name for explicit ``backend=`` plumbing.
    """
    pinned = request.config.getoption("--backend")
    if pinned is not None and request.param != pinned:
        pytest.skip(f"pinned to --backend={pinned}")
    monkeypatch.setenv("REPRO_CORE", request.param)
    return request.param


@pytest.fixture
def record_throughput(benchmark):
    """Attach cells/sec (and pages/sec) to the benchmark's ``extra_info``.

    A *cell* is one page-chunk's worth of simulation state touched per
    operation; dividing by the measured median converts the timing into
    the throughput number the CI regression gate and BENCH_simulator.json
    track across backends.  The median (not the mean) keeps the recorded
    number stable on noisy shared runners, where scheduler steal inflates
    a benchmark's tail rounds by an order of magnitude.
    """

    def _record(n_cells, chunk_size=None):
        median = benchmark.stats.stats.median
        if median <= 0:  # pragma: no cover - degenerate timer resolution
            return
        benchmark.extra_info["n_cells"] = int(n_cells)
        benchmark.extra_info["cells_per_sec"] = round(n_cells / median)
        if chunk_size:
            pages = n_cells * (chunk_size // PAGE_SIZE)
            benchmark.extra_info["pages_per_sec"] = round(pages / median)

    return _record


@pytest.fixture
def run_once(benchmark):
    """Run a figure harness exactly once under pytest-benchmark and return
    its FigureResult (printed so ``pytest -s`` shows the figure table)."""

    def _run(fn, **kwargs):
        result = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
        print()
        print(result.to_table())
        return result

    return _run
