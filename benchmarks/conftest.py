"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's figures at laptop scale,
prints the same series the figure plots, and asserts the qualitative
shape (who wins, roughly by how much).  Runs are deterministic, so a
single round measures the harness cost without statistical noise.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a figure harness exactly once under pytest-benchmark and return
    its FigureResult (printed so ``pytest -s`` shows the figure table)."""

    def _run(fn, **kwargs):
        result = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
        print()
        print(result.to_table())
        return result

    return _run
