"""Extension bench — containerized colocation vs bare-metal exclusivity.

The §I premise quantified: packing workflows onto shared nodes must beat
whole-node allocations on makespan, core utilisation, and queue wait.
"""

from repro.experiments import run_colocation


def test_colocation_beats_exclusivity(run_once):
    r = run_once(run_colocation)
    assert r.value("containerized", "makespan (s)") < r.value("bare-metal", "makespan (s)")
    assert (
        r.value("containerized", "mean core util (%)")
        > r.value("bare-metal", "mean core util (%)")
    )
    assert (
        r.value("containerized", "mean queue wait (s)")
        < r.value("bare-metal", "mean queue wait (s)")
    )
