"""Table I / Algorithm 1 micro-benchmarks.

§III-C2 claims the allocation policy's complexity "is a linear function of
the number of memory tiers ... constant O(1)" for the three-tier system —
"particularly important for time-sensitive HPC workflows".  We measure
``TierAlloc`` directly and check the cost does not grow with request size.
"""

import time

from repro.core.allocation import EvictableMap, TierAllocator
from repro.core.flags import MemFlag
from repro.memory.tiers import CXL, DRAM, PMEM, default_tier_specs
from repro.util.units import GiB, MiB


def fresh_ev():
    return EvictableMap({DRAM: GiB(256), PMEM: GiB(512), CXL: GiB(1024)})


def test_tier_alloc_throughput(benchmark):
    """Raw TierAlloc calls per second (the allocation fast path)."""
    alloc = TierAllocator(default_tier_specs())

    def run():
        ev = fresh_ev()
        for i in range(100):
            alloc.tier_alloc(f"w{i % 10}", MiB(256), MemFlag.LAT | MemFlag.CAP, ev)

    benchmark(run)


def test_tier_alloc_is_size_independent(benchmark):
    """O(1) in request size: a 256 GiB plan costs no more than a 1 MiB one."""
    alloc = TierAllocator(default_tier_specs())

    def cost(nbytes, reps=2000):
        t0 = time.perf_counter()
        for _ in range(reps):
            alloc.tier_alloc("w", nbytes, MemFlag.BW, fresh_ev())
        return (time.perf_counter() - t0) / reps

    benchmark.pedantic(
        lambda: alloc.tier_alloc("w", GiB(256), MemFlag.BW, fresh_ev()),
        rounds=200,
        iterations=1,
    )
    small = cost(MiB(1))
    large = cost(GiB(256))
    assert large < small * 3.0  # constant-factor, not size-proportional


def test_allocate_tm_api_latency(benchmark):
    """End-to-end allocate_TM/free_TM through the manager on one node."""
    import numpy as np

    from repro.core.api import TieredMemoryClient
    from repro.core.manager import TieredMemoryManager
    from repro.memory.pageset import PageSet
    from repro.memory.system import NodeMemorySystem
    from repro.policies.base import PolicyContext
    from repro.util.units import KiB

    specs = default_tier_specs(dram_capacity=GiB(1))
    node = NodeMemorySystem(specs, "bench")
    ctx = PolicyContext(memory=node, rng=np.random.default_rng(0))
    mgr = TieredMemoryManager(specs)
    ps = PageSet("task", GiB(4), KiB(256))
    node.register(ps)
    client = TieredMemoryClient(ctx, mgr, ps)

    def run():
        h = client.allocate_TM(MiB(64), MemFlag.LAT | MemFlag.CAP)
        client.free_TM(h)

    benchmark(run)
