"""Extension bench — variable (loaded) latency, the paper's §VI future work.

With the loaded-latency model on, a tier's effective access latency rises
as its bandwidth utilisation approaches saturation.  The bench verifies:

* the model costs nothing when idle (IE solo run unchanged),
* heavy colocation gets visibly slower with loaded latency enabled,
* IMME's multi-tier striping — which also *spreads utilisation* — retains
  its advantage over single-tier placement under the harsher model.
"""

from repro.envs.environments import EnvKind
from repro.experiments.common import build_env, colocated_mix, per_class_exec_time, run_and_collect
from repro.experiments.fig05_exec_time import DEFAULT_MIX
from repro.runtime.rates import RateModelConfig


def run_with(kind, specs, loaded: bool):
    from repro.envs.environments import make_environment

    total = sum(s.max_footprint for s in specs)
    dram = int(total * (1.5 if kind is EnvKind.IE else 0.25))
    env = make_environment(
        kind,
        dram_capacity=dram,
        chunk_size=1 << 20,
        rate_config=RateModelConfig(loaded_latency=loaded),
    )
    m = env.run_batch(specs, max_time=1e7)
    env.stop()
    return m


def test_loaded_latency_model(benchmark):
    specs = colocated_mix(dict(DEFAULT_MIX))

    def run():
        ie_plain = run_with(EnvKind.IE, specs, loaded=False)
        ie_loaded = run_with(EnvKind.IE, specs, loaded=True)
        imme_loaded = run_with(EnvKind.IMME, specs, loaded=True)
        return ie_plain, ie_loaded, imme_loaded

    ie_plain, ie_loaded, imme_loaded = benchmark.pedantic(run, rounds=1, iterations=1)
    t_plain = ie_plain.mean_execution_time()
    t_loaded = ie_loaded.mean_execution_time()
    t_imme = imme_loaded.mean_execution_time()
    print(
        f"\nIE plain {t_plain:.1f}s | IE loaded-latency {t_loaded:.1f}s | "
        f"IMME loaded-latency {t_imme:.1f}s"
    )
    # loaded latency makes the contended ideal environment slower
    assert t_loaded >= t_plain
    # IMME (which spreads utilisation across tiers) stays competitive with
    # the DRAM-only ideal node under the harsher model
    assert t_imme <= t_loaded * 1.10
