"""Simulator-scalability benchmarks.

How far the substrate itself scales: raw engine throughput, and a
paper-scale run — the full Fig. 10 2000-instance class mix on an 8-node
IMME cluster — in one wall-clock measurement.
"""

import pytest

from repro.envs.environments import EnvKind
from repro.experiments.common import build_env, run_and_collect
from repro.sim.engine import SimulationEngine
from repro.util.rng import RngFactory
from repro.workflows.ensembles import paper_batch


def test_engine_event_throughput(benchmark):
    """Raw DES throughput: schedule+fire cycles per second."""

    def run():
        engine = SimulationEngine()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 20_000:
                engine.schedule(1.0, tick)

        engine.schedule(1.0, tick)
        engine.run()
        return count

    assert benchmark(run) == 20_000


@pytest.mark.parametrize("instances", [200])
def test_paper_scale_mix(benchmark, backend, instances):
    """A Fig-10-class run: ``instances`` tasks in the paper's mix on 8
    IMME nodes, under each simulation-core backend (results are identical;
    the wall-clock difference is the arena's end-to-end win).  The
    assertion is completeness; the benchmark value is the simulator's
    wall-clock cost at scale."""

    specs = paper_batch(instances, scale=1 / 64, rng_factory=RngFactory(0))

    def run():
        env = build_env(EnvKind.IMME, specs, dram_fraction=0.30, n_nodes=8)
        metrics = run_and_collect(env, specs)
        return metrics

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(metrics.completed()) == len(specs)
    print(
        f"\n{instances} instances on 8 nodes ({backend} core): simulated "
        f"makespan {metrics.makespan():.0f}s"
    )
