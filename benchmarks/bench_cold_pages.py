"""§II-C claim — 55-80% of BERT's allocation is idle in the first 120s.

The heatmap-backed cold-page measurement over the DL workload must land in
the paper's band at every sample point.
"""

from repro.experiments import run_cold_pages


def test_cold_pages_band(run_once):
    r = run_once(run_cold_pages)
    series = r.series["idle-fraction"]
    assert all(0.50 <= v <= 0.85 for v in series)
    # idleness never increases as training touches more memory
    assert series == sorted(series, reverse=True)
    # the early band is distinctly colder than the late one
    assert series[0] >= series[-1]
