"""Figure 6 — varying the CXL share of workflow memory (10-50%).

Paper shape: the workflow-oblivious TME degrades as more memory is forced
to CXL; IMME, free to choose *which* pages go remote, stays nearly flat
and beats TME at every point.
"""

import numpy as np

from repro.experiments import run_fig06


def test_fig06_cxl_fraction(run_once):
    r = run_once(run_fig06)
    tme = np.array(r.series["TME"])
    imme = np.array(r.series["IMME"])
    # IMME wins at every CXL share
    assert (imme <= tme * 1.02).all()
    # IMME is nearly flat across the sweep (class-aware placement makes the
    # forced share irrelevant)
    assert imme.max() - imme.min() <= 0.10 * imme.mean()
    # TME's worst point is visibly worse than its best (oblivious clipping
    # of hot pages grows with the share)
    assert tme.max() >= tme.min()
