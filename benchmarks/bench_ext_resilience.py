"""Extension bench — survival under an injected fault schedule.

The chaos companion to ``bench_ext_failures``: the same memory-capped
ensemble runs through a registry outage, a straggler, a degraded PMem
device, a node crash, and a CXL link flap.  The recovery paths (requeue
with backoff, tier evacuation, pull retry/fallback) must carry IMME's
workflows through while CBE/TME still lose theirs to the OOM killer.
"""

from repro.experiments import run_resilience


def test_resilience(run_once):
    r = run_once(run_resilience)
    # every fault fires and every recovery is accounted
    assert r.value("IMME", "faults") > 0.0
    assert r.value("IMME", "mttr (s)") > 0.0
    # IMME survives the chaos at least as well as the baselines
    imme = r.value("IMME", "completed")
    assert imme >= r.value("CBE", "completed")
    assert imme >= r.value("TME", "completed")
    # and loses nothing: faults are recovered, only OOM kills are terminal
    assert r.value("IMME", "failed") == 0.0
    assert r.value("CBE", "failed") > 0.0
