"""Parallel sweep executor benchmark.

Wall-clock of a four-experiment sweep at ``jobs=1`` versus
``jobs=cpu_count``, asserting the two produce identical figures and
reporting the realised speedup.  On a multi-core runner the parallel run
should approach ``min(cpu_count, 4)``x; on a single core it degrades to
the in-process path with no pool overhead.
"""

import time

from repro.experiments.runner import run_all
from repro.parallel import available_parallelism, supports_fork

#: four cheap-but-real experiments: enough work to amortise worker forks,
#: small enough that the benchmark stays in CI budget
SWEEP = ["validation", "cold-pages", "fig01", "ext-utilization"]


def _series(results):
    return {name: (r.xlabels, r.series) for name, r in results.items()}


def test_parallel_sweep_matches_and_speeds_up(benchmark):
    # cache off on both sides: this benchmark measures *live* execution
    # (bench_cache.py measures the cache)
    t0 = time.perf_counter()
    sequential = run_all(SWEEP, verbose=False, jobs=1, cache_dir=None)
    t_seq = time.perf_counter() - t0

    jobs = available_parallelism()
    parallel = benchmark.pedantic(
        lambda: run_all(SWEEP, verbose=False, jobs=jobs, cache_dir=None),
        rounds=1,
        iterations=1,
    )
    t_par = benchmark.stats.stats.mean

    assert _series(parallel) == _series(sequential)
    speedup = t_seq / t_par if t_par > 0 else float("inf")
    print(
        f"\n{len(SWEEP)}-experiment sweep: jobs=1 {t_seq:.2f}s, "
        f"jobs={jobs} {t_par:.2f}s, speedup {speedup:.2f}x "
        f"(fork={'yes' if supports_fork() else 'no'}, cores={jobs})"
    )
    if supports_fork() and jobs >= 2:
        # a pool must never be slower than sequential by more than its
        # fork/pickle overhead; real speedup needs real cores
        assert speedup > 0.8
