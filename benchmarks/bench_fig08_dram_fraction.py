"""Figure 8 — DRAM availability as a fraction of working-set size.

Paper shape: IE (DRAM+swap) explodes as DRAM shrinks below the WSS;
TME/IMME absorb the shortfall in byte-addressable tiers and stay nearly
flat; IMME's class-aware placement gives the biggest wins for the
latency-sensitive (DM) and capacity-hungry (SC) classes.
"""

from repro.experiments import run_fig08
from repro.experiments.common import CLASS_ORDER


def test_fig08_dram_fraction(run_once):
    r = run_once(run_fig08)
    for cls in CLASS_ORDER:
        ie = r.series[f"IE:{cls.name}"]
        imme = r.series[f"IMME:{cls.name}"]
        # IE degrades monotonically-ish as DRAM shrinks (first point is the
        # most constrained)
        assert ie[0] >= ie[-1]
        # IMME beats IE at the most constrained point for every class
        assert imme[0] < ie[0]
        # IMME stays much flatter than IE across the sweep
        ie_spread = ie[0] / ie[-1]
        imme_spread = imme[0] / max(imme[-1], 1e-9)
        assert imme_spread < ie_spread
