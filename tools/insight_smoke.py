#!/usr/bin/env python
"""Insight-plane smoke check for CI.

Validates the artifacts of the memory-introspection plane — the
migration ledger (``ledger.ndjson``), the live service stream
(``live.ndjson`` + ``metrics.prom``), and the insight record
(``insight.json``) — against their schemas, line by line.  Exit 0 on
success, 1 with a diagnostic otherwise.

Two modes::

    # validate directories an earlier run produced (CI after serve --live)
    PYTHONPATH=src python tools/insight_smoke.py TELEMETRY_DIR [LIVE_DIR]

    # self-contained: run a service scenario under an insight session,
    # write the artifacts to a temp dir, then validate them
    PYTHONPATH=src python tools/insight_smoke.py
"""

from __future__ import annotations

import json
import os
import sys

from repro.obs import insight as _insight
from repro.obs.exporters import (
    INSIGHT_FILE,
    LEDGER_FILE,
    LEDGER_SCHEMA,
    load_insight_record,
)

DEFAULT = "ext-steady-state/IMME:0.10"

#: per-entry fields every ledger line must carry, with their types
ENTRY_FIELDS = {
    "t": (int, float),
    "node": str,
    "kind": str,
    "cause": str,
    "task": str,
    "src": int,
    "dst": int,
    "chunks": int,
    "bytes": int,
    "src_tier": str,
    "dst_tier": str,
}


def check(cond: bool, what: str, failures: list) -> None:
    if not cond:
        failures.append(what)


def validate_ledger(path: str, failures: list) -> None:
    """Header schema, per-line fields/types, totals reconciliation."""
    with open(path, encoding="utf-8") as fh:
        lines = [ln for ln in (raw.strip() for raw in fh) if ln]
    check(len(lines) >= 1, f"{path}: has a header line", failures)
    if not lines:
        return
    header = json.loads(lines[0])
    check(header.get("schema") == LEDGER_SCHEMA,
          f"ledger schema tag is {LEDGER_SCHEMA} (got {header.get('schema')!r})",
          failures)
    check(header.get("entries") == len(lines) - 1,
          f"header entry count matches body "
          f"({header.get('entries')} vs {len(lines) - 1})", failures)
    check(isinstance(header.get("dropped"), int) and header["dropped"] >= 0,
          "header carries a non-negative drop count", failures)
    check(list(header.get("fields", [])) == list(ENTRY_FIELDS),
          f"header field list matches the entry schema "
          f"(got {header.get('fields')})", failures)
    by_kind: dict = {}
    for i, ln in enumerate(lines[1:], start=2):
        entry = json.loads(ln)
        for field, types in ENTRY_FIELDS.items():
            ok = isinstance(entry.get(field), types) and not isinstance(
                entry.get(field), bool
            )
            if not ok:
                failures.append(
                    f"ledger line {i}: field {field!r} missing or mistyped "
                    f"({entry.get(field)!r})"
                )
                break
        else:
            check(entry["kind"] in _insight.LEDGER_KINDS,
                  f"ledger line {i}: known kind (got {entry['kind']!r})", failures)
            check(entry["bytes"] >= 0 and entry["chunks"] >= 0,
                  f"ledger line {i}: non-negative bytes/chunks", failures)
            by_kind[entry["kind"]] = by_kind.get(entry["kind"], 0) + 1
    # the header's drop-proof totals must cover at least the listed entries
    total_counts: dict = {}
    for key, (n, _chunks, _b) in header.get("totals", {}).items():
        kind = key.split("|")[0]
        total_counts[kind] = total_counts.get(kind, 0) + int(n)
    for kind, n in by_kind.items():
        check(total_counts.get(kind, 0) >= n,
              f"totals cover listed {kind} entries "
              f"({total_counts.get(kind, 0)} >= {n})", failures)


def validate_live(directory: str, failures: list) -> None:
    """live.ndjson line schema + monotonic windows, metrics.prom parses."""
    live_path = os.path.join(directory, _insight.LIVE_FILE)
    check(os.path.isfile(live_path), f"{live_path} exists", failures)
    if not os.path.isfile(live_path):
        return
    with open(live_path, encoding="utf-8") as fh:
        lines = [ln for ln in (raw.strip() for raw in fh) if ln]
    check(len(lines) > 0, f"{live_path}: at least one window", failures)
    prev_window = -1
    for i, ln in enumerate(lines, start=1):
        payload = json.loads(ln)
        for field in _insight.LIVE_SCHEMA:
            if field not in payload:
                failures.append(f"live line {i}: missing field {field!r}")
                break
        else:
            check(payload["window"] > prev_window,
                  f"live line {i}: window index increases", failures)
            prev_window = payload["window"]
            check(payload["end"] > payload["start"],
                  f"live line {i}: positive window span", failures)
            check(payload["admitted"] + payload["rejected"] == payload["offered"],
                  f"live line {i}: arrival split reconciles", failures)
            for node, block in payload.get("tiers", {}).items():
                check(set(block) == {"occupancy", "free", "stall"},
                      f"live line {i}: node {node} tier block shape", failures)
                check(set(block["occupancy"]) == set(_insight.TIER_LABELS),
                      f"live line {i}: node {node} occupancy covers all tiers",
                      failures)
    prom_path = os.path.join(directory, _insight.PROM_FILE)
    check(os.path.isfile(prom_path), f"{prom_path} exists", failures)
    if os.path.isfile(prom_path):
        with open(prom_path, encoding="utf-8") as fh:
            metrics = 0
            for raw in fh:
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.rsplit(" ", 1)
                check(len(parts) == 2, f"prom line parses: {line!r}", failures)
                if len(parts) == 2:
                    try:
                        float(parts[1])
                        metrics += 1
                    except ValueError:
                        failures.append(f"prom value not numeric: {line!r}")
            check(metrics > 0, f"{prom_path}: at least one metric", failures)


def validate_record(run_dir: str, failures: list) -> None:
    """insight.json loads, round-trips, and agrees with ledger.ndjson."""
    record = load_insight_record(run_dir)
    check(record is not None, f"{run_dir}/{INSIGHT_FILE} loads", failures)
    if record is None:
        return
    roundtrip = _insight.InsightRecord.from_dict(record.to_dict())
    check(roundtrip == record, "insight record dict round-trip identity", failures)
    ledger_path = os.path.join(run_dir, LEDGER_FILE)
    if os.path.isfile(ledger_path):
        with open(ledger_path, encoding="utf-8") as fh:
            body = sum(1 for ln in fh if ln.strip()) - 1
        check(body == len(record.entries),
              f"ledger body matches record entries ({body} vs "
              f"{len(record.entries)})", failures)


def _self_contained(tmp: str) -> "tuple[str, str]":
    """Run the default service scenario with the insight plane on and
    write every artifact under ``tmp``; returns (telemetry_dir, live_dir)."""
    from repro.obs.exporters import write_run_dir
    from repro.obs.telemetry import Telemetry, session as tel_session
    from repro.scenarios import run_service
    from repro.scenarios.registry import scenario

    spec = scenario(DEFAULT)
    tel_dir = os.path.join(tmp, "telemetry")
    live_dir = os.path.join(tmp, "live")
    telemetry = Telemetry("insight-smoke")
    insight = _insight.Insight("insight-smoke")
    with tel_session(telemetry), _insight.session(insight):
        run_service(spec, live=live_dir)
    write_run_dir(telemetry.snapshot(), tel_dir, insight.snapshot())
    return tel_dir, live_dir


def main(argv: list) -> int:
    failures: list = []
    if len(argv) > 1:
        tel_dir = argv[1]
        live_dir = argv[2] if len(argv) > 2 else None
    else:
        import tempfile

        tmp = tempfile.mkdtemp(prefix="insight-smoke-")
        tel_dir, live_dir = _self_contained(tmp)
    ledger_path = os.path.join(tel_dir, LEDGER_FILE)
    check(os.path.isfile(ledger_path), f"{ledger_path} exists", failures)
    if os.path.isfile(ledger_path):
        validate_ledger(ledger_path, failures)
    validate_record(tel_dir, failures)
    if live_dir is not None:
        validate_live(live_dir, failures)
    if failures:
        print(f"FAIL: {len(failures)} schema violations:")
        for what in failures:
            print(f"  - {what}")
        return 1
    scope = f"{tel_dir}" + (f" + {live_dir}" if live_dir else "")
    print(f"OK: insight artifacts valid ({scope})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
