#!/usr/bin/env python
"""Chaos smoke test: SIGKILL a sweep mid-run, resume it, compare bytes.

The end-to-end proof behind ``run_all --resume``:

1. run a small experiment subset to completion in a pristine cache and
   keep its markdown report as the reference,
2. start the same subset in a second pristine cache, wait until the
   journal shows at least one committed cell, and SIGKILL the whole
   process group (supervisor and workers alike — no cleanup handlers
   get to run),
3. rerun with ``--resume``: committed cells must be served from the
   cache without re-executing, the rest must compute, and the resumed
   report must be byte-identical to the reference.

Exits non-zero on any deviation.  Used by the ``chaos-smoke`` CI job and
runnable locally: ``PYTHONPATH=src python tools/chaos_smoke.py``.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

SUBSET = ["validation", "cold-pages", "fig01", "fig09"]
COMMIT_WAIT_S = 120
RESUME_TIMEOUT_S = 600


def log(msg):
    print(f"chaos-smoke: {msg}", flush=True)


def run_cmd(args, env, **kw):
    cmd = [sys.executable, "-m", "repro.experiments", *args]
    return subprocess.run(cmd, env=env, **kw)


def journal_committed(path):
    """Committed cells per the journal, tolerating a torn trailing line."""
    cells = set()
    if not os.path.exists(path):
        return cells
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if entry.get("ev") == "cell-committed":
                cells.add(entry["cell"])
    return cells


def main():
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        ref_report = os.path.join(tmp, "reference.md")
        res_report = os.path.join(tmp, "resumed.md")

        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = os.path.join(tmp, "cache-reference")
        log(f"reference run: {' '.join(SUBSET)}")
        proc = run_cmd(
            [*SUBSET, "--quiet", "--jobs", "4", "--out", ref_report],
            env, timeout=RESUME_TIMEOUT_S,
        )
        if proc.returncode != 0:
            log(f"FAIL: reference run exited {proc.returncode}")
            return 1

        chaos_cache = os.path.join(tmp, "cache-chaos")
        journal = os.path.join(chaos_cache, "journal.jsonl")
        env["REPRO_CACHE_DIR"] = chaos_cache
        log("chaos run: SIGKILL after the first committed cell")
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments", *SUBSET,
             "--quiet", "--jobs", "2"],
            env=env, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        committed = set()
        deadline = time.monotonic() + COMMIT_WAIT_S
        try:
            while time.monotonic() < deadline:
                committed = journal_committed(journal)
                if committed or victim.poll() is not None:
                    break
                time.sleep(0.01)
        finally:
            os.killpg(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)
        if victim.returncode == 0:
            log("WARN: the run finished before the kill landed; "
                "resume will be a pure cache replay")
        elif not committed:
            log("FAIL: nothing committed before the kill")
            return 1
        log(f"killed with {sorted(committed)} committed")

        log("resume run")
        proc = run_cmd(
            [*SUBSET, "--quiet", "--jobs", "2", "--resume",
             "--out", res_report],
            env, timeout=RESUME_TIMEOUT_S,
        )
        if proc.returncode != 0:
            log(f"FAIL: resume exited {proc.returncode}")
            return 1
        resumed_committed = journal_committed(journal)
        if not set(SUBSET) <= resumed_committed:
            log(f"FAIL: journal missing commits: "
                f"{set(SUBSET) - resumed_committed}")
            return 1

        with open(ref_report, "rb") as a, open(res_report, "rb") as b:
            if a.read() != b.read():
                log("FAIL: resumed report differs from the reference")
                return 1
        log("OK: resumed run is byte-identical to the reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())
