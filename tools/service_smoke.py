#!/usr/bin/env python
"""Service-mode smoke check for CI.

Runs one registered steady-state service scenario under the active
``$REPRO_CORE`` backend and validates the report *schema*: every field a
downstream consumer (CLI table, experiment series, cache codec) reads
must be present, typed, and internally consistent, and the run must have
actually admitted and completed work.  Exit 0 on success, 1 with a
diagnostic otherwise.

Usage::

    PYTHONPATH=src python tools/service_smoke.py [scenario-name]
"""

from __future__ import annotations

import math
import sys

from repro.cache.codec import decode, encode
from repro.scenarios import run_service
from repro.scenarios.registry import scenario
from repro.service import ClassLatency, ServiceReport, WindowRecord

DEFAULT = "ext-steady-state/IMME:0.10"


def check(cond: bool, what: str, failures: list) -> None:
    if not cond:
        failures.append(what)


def validate(report: ServiceReport) -> list:
    f: list = []
    check(isinstance(report, ServiceReport), "result is a ServiceReport", f)
    check(report.offered > 0, f"offered > 0 (got {report.offered})", f)
    check(report.admitted > 0, f"admitted > 0 (got {report.admitted})", f)
    check(report.completed > 0, f"completed > 0 (got {report.completed})", f)
    check(report.admitted + report.rejected == report.offered,
          "admitted + rejected == offered", f)
    check(report.duration > 0, "duration > 0", f)
    check(len(report.windows) > 0, "at least one window", f)
    check(0 <= report.warmup_windows <= len(report.windows),
          "warm-up cut within the window range", f)
    check(isinstance(report.converged, bool), "converged is a bool", f)
    for w in report.windows:
        check(isinstance(w, WindowRecord), f"window {w!r} typed", f)
        check(w.end > w.start, f"window {w.index} has positive span", f)
        check(0.0 <= w.utilization <= 1.0, f"window {w.index} utilization in [0,1]", f)
        check(w.arrivals == w.admitted + w.rejected,
              f"window {w.index} arrival split reconciles", f)
    check(sum(w.arrivals for w in report.windows) == report.offered,
          "window arrivals sum to offered", f)
    check(sum(w.completed for w in report.windows) == report.completed,
          "window completions sum to completed", f)
    check(0.0 <= report.steady_utilization <= 1.0, "steady utilization in [0,1]", f)
    check(report.steady_queue_depth >= 0.0, "steady queue depth >= 0", f)
    check(len(report.class_latency) > 0, "at least one class completed", f)
    for cl in report.class_latency:
        check(isinstance(cl, ClassLatency), f"class latency {cl!r} typed", f)
        check(cl.count > 0, f"{cl.wclass}: count > 0", f)
        check(math.isfinite(cl.mean), f"{cl.wclass}: finite mean", f)
        check(cl.p50 <= cl.p95 <= cl.p99, f"{cl.wclass}: ordered percentiles", f)
    check(decode(encode(report)) == report, "codec round-trip identity", f)
    return f


def main(argv: list) -> int:
    name = argv[1] if len(argv) > 1 else DEFAULT
    spec = scenario(name)
    if spec.service is None:
        print(f"FAIL: scenario {name!r} has no service section")
        return 1
    report = run_service(spec)
    failures = validate(report)
    print(report.to_table())
    if failures:
        print(f"\nFAIL: {len(failures)} schema violations in {name}:")
        for what in failures:
            print(f"  - {what}")
        return 1
    print(f"\nOK: {name} report schema valid "
          f"(admitted={report.admitted}, completed={report.completed})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
