#!/usr/bin/env python3
"""Author a scenario as TOML, load it, and run it — no harness code.

The TOML below is the *entire* experiment definition: a memory-capped
scientific ensemble on a two-node tiered cluster.  A team checks a file
like this into their repo; ``python -m repro scenarios run spec.toml``
(or the three lines of Python at the bottom) reproduces it anywhere,
byte-identically, because the spec round-trips losslessly and every
behaviour it references — workload builder, allocation policy, fault
schedule — is *named*, never embedded.

Run:  python examples/custom_scenario.py
"""

import tempfile
from pathlib import Path

from repro.scenarios import TierSizing, from_toml, load_scenario, run_scenario, to_toml

SPEC_TOML = """\
# repro scenario (spec version 1)
name = "custom/sc-capped"
env = "IMME"
n_nodes = 2
chunk_size = 1048576
seed = 42

[workload]
source = "class-ensemble"
scale = 0.015625
wclass = "SC"
instances = 4

[workload.params]
limit_margin = 0.05

[sizing]
dram_fraction = 0.3
basis = "max-footprint"
"""


def main() -> None:
    spec = from_toml(SPEC_TOML)
    print(f"loaded {spec.name!r}: {spec.env.name}, "
          f"{spec.workload.instances}x {spec.workload.wclass}, "
          f"digest={spec.digest()[:12]}\n")

    # the file form is equivalent — this is what `scenarios run` reads
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "sc-capped.toml"
        path.write_text(SPEC_TOML, encoding="utf-8")
        assert load_scenario(path) == spec  # lossless round trip

    out = run_scenario(spec)
    print(f"completed {out.completed}/{out.completed + out.failed} workflows "
          f"in {out.makespan:.1f}s (mean startup {out.mean_startup:.2f}s)")

    # tweak one field and the digest — hence the cache key — moves with it
    tighter = spec.evolve(sizing=TierSizing(dram_fraction=0.15))
    print(f"\nat 15% DRAM the digest becomes {tighter.digest()[:12]}; "
          "serialized back out it reads:\n")
    print(to_toml(tighter))


if __name__ == "__main__":
    main()
