#!/usr/bin/env python3
"""Plugging a custom memory policy into the simulation stack.

Implements a deliberately naive "CXL-first" policy (everything lands on
CXL; hot pages are promoted to DRAM only on daemon ticks) and races it
against the built-in baselines and the paper's manager on the same
workload — a template for experimenting with your own placement ideas.

Run:  python examples/custom_policy.py
"""

import numpy as np

from repro.envs import EnvKind
from repro.experiments.common import build_env, colocated_mix, per_class_exec_time
from repro.memory import CXL, DRAM, PageSet
from repro.metrics import format_table
from repro.policies import AllocationRequest, MemoryPolicy, PolicyContext, cascade_place
from repro.workflows import WorkloadClass


class CxlFirstPolicy(MemoryPolicy):
    """Everything starts remote; only proven-hot pages earn DRAM."""

    name = "cxl-first"

    def __init__(self, promote_chunks_per_tick: int = 64) -> None:
        self.promote_chunks_per_tick = promote_chunks_per_tick

    def place(self, ctx: PolicyContext, ps: PageSet, request: AllocationRequest) -> None:
        idx = ctx.region_chunks(ps, request.region)
        unmapped = idx[ps.tier[idx] == -1]
        if unmapped.size:
            cascade_place(ctx, ps, unmapped, (CXL, DRAM))

    def tick(self, ctx: PolicyContext) -> None:
        budget = self.promote_chunks_per_tick
        for ps in list(ctx.memory.pagesets()):
            if budget <= 0:
                return
            hot = ps.hottest_in(CXL, budget)
            hot = hot[ps.temperature[hot] > 0.1]
            room = max(0, ctx.memory.free(DRAM)) // ps.chunk_size
            take = hot[: int(room)]
            if take.size:
                ctx.memory.migrate(ps, take, DRAM)
                ctx.record_minor(ps.owner, int(take.size))
                budget -= take.size


def main() -> None:
    specs = colocated_mix({WorkloadClass.DM: 4, WorkloadClass.SC: 2, WorkloadClass.DC: 2})
    classes = [WorkloadClass.DM, WorkloadClass.DC, WorkloadClass.SC]

    contenders = {
        "cxl-first (custom)": dict(
            kind=EnvKind.TME, policy_factory=lambda s: CxlFirstPolicy()
        ),
        "tpp-baseline": dict(kind=EnvKind.TME, policy_factory=None),
        "paper-manager": dict(kind=EnvKind.IMME, policy_factory=None),
    }
    rows = []
    for name, cfg in contenders.items():
        env = build_env(
            cfg["kind"], specs, dram_fraction=0.25, policy_factory=cfg["policy_factory"]
        )
        metrics = env.run_batch(specs)
        times = per_class_exec_time(metrics)
        rows.append([name] + [times[c] for c in classes])
        env.stop()

    print(
        format_table(
            ["policy"] + [c.name for c in classes],
            rows,
            title="Custom policy vs built-ins: mean execution time (s)",
        )
    )
    print(
        "\nCXL-first pays the promotion lag on every latency-sensitive phase;"
        "\nthe paper's manager places LAT pages correctly from the first access."
    )


if __name__ == "__main__":
    main()
