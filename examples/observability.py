#!/usr/bin/env python3
"""Observability: tracing and memory-utilisation timelines.

Attaches a :class:`Tracer` and a :class:`UtilizationSampler` to an IMME
node, runs a colocated workload, and prints (1) the task/phase event log
and (2) an ASCII utilisation-over-time strip per memory tier — the data a
real deployment would ship to its monitoring stack.

Run:  python examples/observability.py
"""

from repro.envs import EnvKind, EnvironmentConfig, Environment
from repro.memory import CXL, DRAM, TierKind
from repro.metrics import UtilizationSampler
from repro.sim import Tracer
from repro.util.units import MiB, bytes_to_human
from repro.workflows import paper_workload_suite

SCALE = 1 / 128


def sparkline(values, width=48) -> str:
    blocks = " .:-=+*#%@"
    if not len(values):
        return ""
    step = max(1, len(values) // width)
    sampled = values[::step][:width]
    top = max(float(v) for v in sampled) or 1.0
    return "".join(blocks[min(9, int(9 * float(v) / top))] for v in sampled)


def main() -> None:
    suite = paper_workload_suite(SCALE)
    specs = [s for s in suite.values()]
    total = sum(s.footprint for s in specs)

    config = EnvironmentConfig(
        kind=EnvKind.IMME,
        dram_capacity=int(total * 0.3),
        pmem_capacity=int(total * 0.6),
        cxl_capacity=total * 8,
        chunk_size=MiB(1),
    )
    env = Environment(config)
    tracer = Tracer(categories=["task", "phase"])
    for agent in env.agents:
        agent.tracer = tracer
    sampler = UtilizationSampler(env.engine, env.topology.nodes, interval=2.0)
    sampler.start()

    env.run_batch(specs)
    sampler.stop()

    print("=== Event log (first 12 events) ===")
    for ev in tracer.events()[:12]:
        extra = ", ".join(f"{k}={v}" for k, v in ev.data.items())
        print(f"  t={ev.time:8.2f}s  {ev.category:5s}  {ev.subject:4s}  {extra}")
    print(f"  ... {len(tracer)} events total\n")

    print("=== Memory residency over time ===")
    for tier in (DRAM, TierKind.PMEM, CXL):
        series = sampler.cluster_series(tier)
        peak = sampler.peak(tier)
        print(
            f"  {tier.name:5s} |{sparkline(series)}| "
            f"peak {bytes_to_human(peak)}, mean util "
            f"{100 * sampler.mean_utilization(tier):.0f}%"
        )
    print(
        "\nIMME keeps DRAM hot-set-sized while the CXL strip absorbs the "
        "cold footprint — the §III-C4 proactive-swap signature."
    )
    env.stop()


if __name__ == "__main__":
    main()
