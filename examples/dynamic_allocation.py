#!/usr/bin/env python3
"""The Table I API: ``allocate_TM`` / ``free_TM`` with advisory flags.

Two demonstrations:

1. **Direct client usage** — drive a TieredMemoryClient by hand against a
   Tiered Memory Manager and watch where each flag's pages land.
2. **Mid-run expansion** — the scientific (BFS) workload requesting extra
   CAP memory during its traversal phase, "expanding their memory
   footprint on the tiered memory which would otherwise crash" (§IV-D1).

Run:  python examples/dynamic_allocation.py
"""

import numpy as np

from repro.core import MemFlag, TieredMemoryClient, TieredMemoryManager
from repro.envs import EnvKind, make_environment
from repro.memory import NodeMemorySystem, PageSet, TierKind, default_tier_specs
from repro.policies import PolicyContext
from repro.util.units import GiB, KiB, MiB, bytes_to_human
from repro.workflows import scientific_task


def direct_api_demo() -> None:
    print("=== Table I API, by hand ===")
    specs = default_tier_specs(dram_capacity=GiB(1))
    node = NodeMemorySystem(specs, "demo-node")
    manager = TieredMemoryManager(specs)
    ctx = PolicyContext(memory=node, rng=np.random.default_rng(0))

    ps = PageSet("my-task", GiB(8), chunk_size=MiB(4))
    node.register(ps)
    client = TieredMemoryClient(ctx, manager, ps)

    handles = {
        "LAT (lookup tables)": client.allocate_TM(MiB(256), MemFlag.LAT),
        "BW  (stream buffers)": client.allocate_TM(GiB(1), MemFlag.BW),
        "CAP (checkpoint)": client.allocate_TM(GiB(2), MemFlag.CAP),
        "none (predictor)": client.allocate_TM(MiB(512)),
    }
    for label, h in handles.items():
        region_chunks = np.flatnonzero(ps.region == h.region)
        placement = {
            TierKind(t).name: int(n)
            for t, n in zip(*np.unique(ps.tier[region_chunks], return_counts=True))
        }
        print(f"  {label:22s} -> {placement} (chunks)")

    client.free_TM(handles["CAP (checkpoint)"])
    print(f"  after free_TM(CAP): CXL in use = {bytes_to_human(node.used(TierKind.CXL))}")
    node.validate()
    print()


def midrun_expansion_demo() -> None:
    print("=== Mid-run footprint expansion (SC workload) ===")
    spec = scientific_task(scale=1 / 64, request_extra=True)
    print(
        f"  BFS task: initial footprint {bytes_to_human(spec.footprint)}, "
        f"traversal phase requests {bytes_to_human(spec.max_footprint - spec.footprint)} more"
    )
    env = make_environment(
        EnvKind.IMME, dram_capacity=int(spec.footprint * 0.5), chunk_size=MiB(1)
    )
    metrics = env.run_batch([spec])
    tm = metrics.get(spec.name)
    print(
        f"  completed in {tm.execution_time:.1f}s with the expansion served "
        f"from the CXL tier (no crash, no swap)"
    )
    traffic = env.node_traffic()
    print(f"  bytes swapped to disk: {bytes_to_human(traffic['swapped_out_bytes'])}")
    env.stop()


if __name__ == "__main__":
    direct_api_demo()
    midrun_expansion_demo()
