#!/usr/bin/env python3
"""A full WMS round-trip: plan a DAG, execute it through SLURM.

Builds the classic simulate/analyse diamond from the paper's introduction
— pre-processing feeding an ensemble of scientific simulations plus a
surrogate training job, all joined by a data-mining post-step — and runs
it through the Pegasus-like planner on an IMME cluster.

Run:  python examples/workflow_dag.py
"""

from repro.envs import EnvKind, make_environment
from repro.metrics import format_table
from repro.util.units import MiB
from repro.wms import WorkflowManager
from repro.workflows import (
    Workflow,
    data_compression_task,
    data_mining_task,
    deep_learning_task,
    make_ensemble,
    scientific_task,
)

SCALE = 1 / 128


def build_campaign() -> Workflow:
    wf = Workflow("simulation-campaign")
    wf.add_task(data_compression_task("stage-in", scale=SCALE, passes=2))
    members = make_ensemble(scientific_task("sim", scale=SCALE), 3)
    for m in members:
        wf.add_task(m, after=["stage-in"])
    wf.add_task(deep_learning_task("surrogate", scale=SCALE, epochs=2), after=["stage-in"])
    wf.add_task(
        data_mining_task("analyse", scale=SCALE),
        after=[m.name for m in members] + ["surrogate"],
    )
    wf.validate()
    return wf


def main() -> None:
    wf = build_campaign()
    print(f"Workflow {wf.name!r}: {len(wf)} tasks in stages {wf.stages()}")
    print(f"critical path (ideal): {wf.critical_path_time():.0f}s\n")

    total = wf.total_footprint
    env = make_environment(
        EnvKind.IMME, n_nodes=2, dram_capacity=int(total * 0.4), chunk_size=MiB(1)
    )
    mgr = WorkflowManager(env.scheduler)
    execution = mgr.submit(wf)
    mgr.run_to_completion()
    assert execution.succeeded

    rows = []
    for tid in wf.topological_order():
        tm = env.metrics.get(tid)
        rows.append([tid, tm.started_at, tm.finished_at, tm.execution_time])
    print(
        format_table(
            ["task", "start (s)", "end (s)", "exec (s)"],
            rows,
            title="Execution timeline",
        )
    )
    print(
        f"\nmakespan {env.metrics.makespan():.0f}s vs ideal critical path "
        f"{wf.critical_path_time():.0f}s"
    )
    env.stop()


if __name__ == "__main__":
    main()
