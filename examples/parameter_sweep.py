#!/usr/bin/env python3
"""Parameter sweeps and JSON workloads: the downstream-user workflow.

1. Define a workload in JSON (as a team would check into their repo),
   load it with :mod:`repro.workflows.serialization`.
2. Use :func:`repro.analysis.sweep` to grid DRAM scarcity against
   environment kinds.
3. Use :func:`repro.analysis.replicate` to put error bars on one cell.

Run:  python examples/parameter_sweep.py
"""

import json

from repro.analysis import replicate, sweep
from repro.envs import EnvKind, make_environment
from repro.util.rng import RngFactory
from repro.util.units import GBps, GiB, MiB
from repro.workflows import load_specs, make_ensemble

WORKLOAD_JSON = json.dumps(
    [
        {
            "name": "etl",
            "wclass": "DM",
            "footprint": GiB(8) // 64,
            "wss": GiB(6) // 64,
            "flags": "LAT|SHL",
            "cores": 2,
            "phases": [
                {
                    "name": "scan",
                    "base_time": 8.0,
                    "compute_frac": 0.3,
                    "lat_frac": 0.6,
                    "bw_frac": 0.1,
                    "demand_bandwidth": GBps(2.0),
                    "pattern": {"type": "hot-cold", "hot_fraction": 0.4, "hot_share": 0.85},
                    "touched_fraction": 0.9,
                }
            ],
        },
        {
            "name": "sweep",
            "wclass": "SC",
            "footprint": GiB(32) // 64,
            "wss": GiB(24) // 64,
            "flags": "CAP",
            "cores": 2,
            "phases": [
                {
                    "name": "traverse",
                    "base_time": 30.0,
                    "compute_frac": 0.55,
                    "lat_frac": 0.35,
                    "bw_frac": 0.10,
                    "demand_bandwidth": GBps(3.0),
                    "pattern": {"type": "zipf", "alpha": 0.8},
                    "touched_fraction": 0.95,
                }
            ],
        },
    ]
)


def main() -> None:
    base_specs = load_specs(WORKLOAD_JSON)
    print(f"Loaded {len(base_specs)} task specs from JSON\n")

    specs = []
    for s in base_specs:
        specs.extend(make_ensemble(s, 3, rng_factory=RngFactory(1)))
    total = sum(s.max_footprint for s in specs)

    result = sweep(
        name="dram-scarcity",
        description="makespan (s) vs DRAM capacity as a fraction of the workload",
        values=[0.2, 0.4, 0.8],
        kinds=[EnvKind.CBE, EnvKind.TME, EnvKind.IMME],
        build=lambda kind, f: make_environment(
            kind, dram_capacity=max(int(total * f), MiB(8)), chunk_size=MiB(1)
        ),
        run=lambda env, f: env.run_batch(list(specs)),
        xlabel=lambda f: f"{int(f * 100)}%",
    )
    print(result.to_table())

    print("\nError bars for the tightest cell (IMME @ 20% DRAM, 5 seeds):")

    def measure(seed: int) -> float:
        jittered = []
        for s in base_specs:
            jittered.extend(make_ensemble(s, 3, rng_factory=RngFactory(seed)))
        env = make_environment(
            EnvKind.IMME, dram_capacity=int(total * 0.2), chunk_size=MiB(1)
        )
        makespan = env.run_batch(jittered).makespan()
        env.stop()
        return makespan

    rep = replicate(measure, seeds=range(5), label="IMME@20%")
    print(f"  {rep}")
    print("  (the paper reports <5% variance across repetitions; see CV above)")


if __name__ == "__main__":
    main()
