#!/usr/bin/env python3
"""Parameter sweeps, declaratively: the downstream-user workflow.

1. Declare one base :class:`repro.ScenarioSpec` — environment kind, tier
   sizing, and a named workload mix, all plain serializable data.
2. ``evolve()`` it across a DRAM-scarcity x environment grid and run each
   cell with :func:`repro.run_scenario`; every cell carries its own
   content digest, so results are attributable and cacheable.
3. Use :func:`repro.analysis.replicate` to put error bars on the
   tightest cell by evolving only the seed.

Run:  python examples/parameter_sweep.py
"""

from repro.analysis import replicate
from repro.envs import EnvKind
from repro.scenarios import ScenarioSpec, TierSizing, WorkloadSpec, run_scenario
from repro.util.units import MiB

#: the whole experiment, as data a team would check into their repo
BASE = ScenarioSpec(
    name="sweep/base",
    env=EnvKind.IMME,
    workload=WorkloadSpec(
        source="colocated-mix",
        scale=1.0 / 64.0,
        instances_per_class=(("DM", 3), ("SC", 3)),
    ),
    sizing=TierSizing(dram_fraction=0.4),
    chunk_size=MiB(1),
)


def cell(kind: EnvKind, fraction: float, seed: int = 0) -> ScenarioSpec:
    return BASE.evolve(
        name=f"sweep/{kind.name}:{int(fraction * 100)}",
        env=kind,
        sizing=TierSizing(dram_fraction=fraction),
        seed=seed,
    )


def main() -> None:
    fractions = [0.2, 0.4, 0.8]
    kinds = [EnvKind.CBE, EnvKind.TME, EnvKind.IMME]

    print("makespan (s) vs DRAM capacity as a fraction of the workload\n")
    header = "env    " + "".join(f"{int(f * 100)}%".rjust(10) for f in fractions)
    print(header)
    for kind in kinds:
        row = [run_scenario(cell(kind, f)) for f in fractions]
        print(
            f"{kind.name:<7}"
            + "".join(f"{out.makespan:10.1f}" for out in row)
            + f"   digest={row[0].digest[:12]}"
        )

    print("\nError bars for the tightest cell (IMME @ 20% DRAM, 5 seeds):")

    def measure(seed: int) -> float:
        # only the seed changes: the jittered ensemble, and nothing else
        return run_scenario(cell(EnvKind.IMME, 0.2, seed=seed)).makespan

    rep = replicate(measure, seeds=range(5), label="IMME@20%")
    print(f"  {rep}")
    print("  (the paper reports <5% variance across repetitions; see CV above)")


if __name__ == "__main__":
    main()
