#!/usr/bin/env python3
"""Colocated-workflow comparison across the four execution environments.

Reproduces the Fig. 5 scenario interactively: a DM-heavy colocated mix of
the studied workflows runs under the Ideal, Constrained-Baseline, Tiered
Memory and Intelligent Memory Management environments, and the script
narrates who wins per workflow class and why.

Run:  python examples/colocated_workflows.py
"""

from repro.envs import EnvKind
from repro.experiments.common import build_env, colocated_mix, per_class_exec_time
from repro.metrics import format_pct, format_table, improvement
from repro.workflows import WorkloadClass

MIX = {
    WorkloadClass.DL: 4,
    WorkloadClass.DM: 6,
    WorkloadClass.DC: 2,
    WorkloadClass.SC: 3,
}

STORY = {
    EnvKind.IE: "plenty of DRAM; only bandwidth contention matters",
    EnvKind.CBE: "scarce DRAM + disk swap; the kernel blindly evicts",
    EnvKind.TME: "PMem/CXL attached; oblivious demand allocation + TPP",
    EnvKind.IMME: "Algorithm 1/2 + intelligent movement + proactive swap",
}


def main() -> None:
    specs = colocated_mix(MIX)
    print(f"Colocating {len(specs)} workflow instances on one node\n")

    results = {}
    for kind in (EnvKind.IE, EnvKind.CBE, EnvKind.TME, EnvKind.IMME):
        env = build_env(kind, specs, dram_fraction=0.25)
        metrics = env.run_batch(specs)
        results[kind] = per_class_exec_time(metrics)
        env.stop()
        print(f"  ran {kind.name:4s} — {STORY[kind]}")

    classes = [WorkloadClass.DL, WorkloadClass.DM, WorkloadClass.DC, WorkloadClass.SC]
    rows = [
        [kind.name] + [results[kind][c] for c in classes] for kind in results
    ]
    print()
    print(
        format_table(
            ["env"] + [c.name for c in classes],
            rows,
            title="Mean execution time per class (s)",
        )
    )

    print("\nIMME improvement:")
    for base in (EnvKind.IE, EnvKind.CBE, EnvKind.TME):
        best_cls = max(
            classes,
            key=lambda c: improvement(results[base][c], results[EnvKind.IMME][c]),
        )
        gain = improvement(results[base][best_cls], results[EnvKind.IMME][best_cls])
        print(f"  vs {base.name:4s}: up to {format_pct(gain)} (on {best_cls.name})")
    print("\nPaper (Fig. 5): up to 7% / 87% / 25% vs IE / CBE / TME.")


if __name__ == "__main__":
    main()
