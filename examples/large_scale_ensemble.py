#!/usr/bin/env python3
"""Large-scale ensemble launch across a cluster (the Fig. 10 scenario).

A batch of workflow instances in the paper's 150:1100:150:600 class mix is
launched on a 4-node cluster twice: once with per-node network image pulls
(TME) and once with IMME's shared-CXL image staging.  The script reports
makespan and — the startup-time story — how long containers waited for
their images.

Run:  python examples/large_scale_ensemble.py
"""

from repro.envs import EnvKind
from repro.experiments.common import build_env
from repro.metrics import format_table
from repro.util.rng import RngFactory
from repro.workflows import paper_batch

INSTANCES = 32
NODES = 4
SCALE = 1 / 64


def main() -> None:
    batch = paper_batch(INSTANCES, scale=SCALE, rng_factory=RngFactory(7))
    by_class = {}
    for s in batch:
        by_class[s.wclass.name] = by_class.get(s.wclass.name, 0) + 1
    print(
        f"Launching {len(batch)} instances on {NODES} nodes "
        f"({', '.join(f'{v} {k}' for k, v in sorted(by_class.items()))})\n"
    )

    rows = []
    for kind in (EnvKind.CBE, EnvKind.TME, EnvKind.IMME):
        env = build_env(kind, batch, dram_fraction=0.30, n_nodes=NODES)
        metrics = env.run_batch(batch)
        rows.append(
            [
                kind.name,
                metrics.makespan(),
                metrics.mean_startup_time(),
                env.containers.network_pulls,
                env.containers.cxl_reads,
                env.containers.cache_hits,
            ]
        )
        env.stop()

    print(
        format_table(
            ["env", "makespan (s)", "mean startup (s)", "net pulls", "CXL reads", "cache hits"],
            rows,
            title="Cluster launch comparison",
        )
    )
    print(
        "\nIMME stages each distinct image once in cluster-shared CXL memory "
        "(§III-C5),\nso scale-outs read images at CXL bandwidth instead of "
        "fighting over the 10 GbE fabric."
    )


if __name__ == "__main__":
    main()
