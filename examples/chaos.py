#!/usr/bin/env python3
"""Chaos harness: a fault schedule against a memory-capped IMME cluster.

Builds the ``ext-resilience`` scenario by hand — a two-node IMME cluster
running a memory-capped scientific ensemble — then lets the
:class:`FaultInjector` replay the default chaos schedule (registry
outage, straggler, degraded PMem, node crash, CXL link flap) while a
:class:`Tracer` records every injection and recovery.  The script prints
the fault event log followed by the survival scoreboard: completions,
requeues, retries, MTTR, and goodput.

Run:  python examples/chaos.py
"""

from dataclasses import replace

from repro.envs import EnvKind, make_environment
from repro.experiments.ext_resilience import default_chaos_schedule
from repro.sim import Tracer
from repro.util.rng import RngFactory
from repro.util.units import MiB, bytes_to_human
from repro.workflows.ensembles import make_ensemble
from repro.workflows.library import scientific_task

SCALE = 1 / 64
INSTANCES = 4
N_NODES = 2
LIMIT_MARGIN = 0.05


def main() -> None:
    base = scientific_task(scale=SCALE, request_extra=True)
    members = [
        replace(m, memory_limit=int(m.footprint * (1.0 + LIMIT_MARGIN)))
        for m in make_ensemble(base, INSTANCES, rng_factory=RngFactory(0))
    ]
    total = sum(m.footprint for m in members)
    print(
        f"Launching {INSTANCES} SC instances ({bytes_to_human(total)} total, "
        f"limits at footprint +{LIMIT_MARGIN:.0%}) on {N_NODES} IMME nodes\n"
    )

    env = make_environment(
        EnvKind.IMME,
        n_nodes=N_NODES,
        dram_capacity=int(total * 1.2 / N_NODES),
        chunk_size=MiB(1),
    )
    tracer = Tracer(categories=["fault"])
    schedule = default_chaos_schedule(N_NODES)
    env.inject_faults(schedule, seed=7, tracer=tracer)
    metrics = env.run_batch(members, max_time=1e7)

    print("=== Fault log ===")
    for ev in tracer.events():
        extra = ", ".join(f"{k}={v}" for k, v in ev.data.items())
        print(f"  t={ev.time:7.1f}s  {ev.subject:18s}  {extra}")

    f = metrics.faults
    print("\n=== Survival scoreboard ===")
    print(f"  completed        {len(metrics.completed())}/{INSTANCES}")
    print(f"  failed           {len(metrics.failed())}")
    print(f"  faults injected  {f.total_injected}")
    print(f"  job requeues     {f.job_requeues}")
    print(f"  task retries     {metrics.total_retries()}")
    print(f"  pull retries     {f.pull_retries} (+{f.pull_fallbacks} CXL->network fallbacks)")
    print(f"  tier evacuations {f.tier_evacuations} ({bytes_to_human(f.evacuated_bytes)})")
    print(f"  MTTR             {f.mttr:.1f} s")
    print(f"  goodput          {metrics.goodput():.2f} workflows/sim-hour")
    print(
        "\nEvery fault either recovers (requeue with backoff, tier "
        "evacuation, pull retry/fallback) or is a recorded failed job; "
        "IMME's uncharged CXL expansions also ride out the memory cap."
    )
    env.stop()


if __name__ == "__main__":
    main()
