#!/usr/bin/env python3
"""Container memory limits and failure avoidance (design objective 1).

Runs the same expanding scientific workflow under a fixed container
allocation in three environments and shows who survives: without tiered
memory the OOM killer fires; the Tiered Memory Manager serves the
expansion from CXL *outside* the cgroup cap and the workflow completes —
§IV-D1's "would otherwise crash".

Run:  python examples/memory_limits.py
"""

from dataclasses import replace

from repro.envs import EnvKind, make_environment
from repro.metrics import format_table
from repro.util.units import MiB, bytes_to_human
from repro.workflows import scientific_task

SCALE = 1 / 128


def main() -> None:
    base = scientific_task(scale=SCALE, request_extra=True)
    spec = replace(base, memory_limit=int(base.footprint * 1.05))
    print(
        f"Workflow: footprint {bytes_to_human(spec.footprint)}, cgroup limit "
        f"{bytes_to_human(spec.memory_limit)}, traversal requests "
        f"{bytes_to_human(spec.max_footprint - spec.footprint)} more mid-run\n"
    )

    rows = []
    for kind in (EnvKind.CBE, EnvKind.TME, EnvKind.IMME):
        env = make_environment(
            kind, dram_capacity=spec.footprint * 2, chunk_size=MiB(1)
        )
        print(f"  {env.summary()}")
        metrics = env.run_batch([spec], max_time=1e6)
        tm = metrics.get(spec.name)
        rows.append(
            [
                kind.name,
                "completed" if tm.done else "OOM-KILLED",
                tm.execution_time if tm.done else float("nan"),
                tm.failure_reason[:46],
            ]
        )
        env.stop()

    print()
    print(
        format_table(
            ["env", "outcome", "exec (s)", "reason"],
            rows,
            title="Fixed allocation + mid-run expansion",
        )
    )
    print(
        "\nOnly the manager's CAP-flagged allocation lands on CXL, which sits"
        "\noutside the container's fixed allocation — the workflow survives."
    )


if __name__ == "__main__":
    main()
