#!/usr/bin/env python3
"""Quickstart: run the paper's four workloads under intelligent tiered
memory management and print what happened.

This builds one IMME node (DRAM sized to a quarter of the workload, PMem
and CXL tiers attached), submits a BERT-style training job, a Spark-style
ETL job, a Zip-style compression job and a BFS-style graph job through the
SLURM-like scheduler, and reports per-workflow execution times and fault
counts.

Run:  python examples/quickstart.py
"""

from repro.envs import EnvKind, make_environment
from repro.metrics import format_table
from repro.util.units import MiB, bytes_to_human
from repro.workflows import paper_workload_suite

SCALE = 1 / 64  # paper sizes divided by 64 so this runs on a laptop


def main() -> None:
    suite = paper_workload_suite(SCALE)
    specs = list(suite.values())
    total = sum(s.footprint for s in specs)
    print(f"Workload: {len(specs)} workflows, total footprint {bytes_to_human(total)}")

    env = make_environment(
        EnvKind.IMME,
        dram_capacity=int(total * 0.25),  # force tiered-memory pressure
        chunk_size=MiB(1),
    )
    node = env.topology.node(0)
    print(
        f"Node: DRAM {bytes_to_human(node.capacity(0))}, "
        f"PMem {bytes_to_human(node.capacity(1))}, "
        f"CXL {bytes_to_human(node.capacity(2))}\n"
    )

    metrics = env.run_batch(specs)

    rows = []
    for tm in sorted(metrics.completed(), key=lambda t: t.owner):
        rows.append(
            [
                tm.owner,
                tm.wclass,
                tm.execution_time,
                tm.startup_time,
                tm.major_faults,
                tm.minor_faults,
            ]
        )
    print(
        format_table(
            ["workflow", "class", "exec (s)", "startup (s)", "majors", "minors"],
            rows,
            title="Per-workflow results (IMME)",
        )
    )
    traffic = env.node_traffic()
    print(
        f"\nmakespan: {metrics.makespan():.1f}s | "
        f"swapped to disk: {bytes_to_human(traffic['swapped_out_bytes'])} | "
        f"migrated to CXL: {bytes_to_human(traffic['migrated_to_cxl_bytes'])}"
    )
    env.stop()


if __name__ == "__main__":
    main()
